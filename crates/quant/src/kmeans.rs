//! Lloyd's k-means with k-means++ initialization.
//!
//! Used twice in the two-level PQ pipeline (Section II-C): once to produce
//! the `|C|` coarse cluster centroids, and once per PQ subspace to produce
//! the `k*` codewords of each codebook.

use anna_vector::{metric, VectorSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`KMeans::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of centroids to learn.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed (training is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 16,
            max_iters: 20,
            seed: 0,
        }
    }
}

/// A trained k-means model: the centroid list of Section II-C.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    centroids: VectorSet,
}

impl KMeans {
    /// Trains centroids on `data` with Lloyd's algorithm.
    ///
    /// Initialization is k-means++; empty clusters are re-seeded from the
    /// point currently farthest from its centroid, so the result always has
    /// exactly `config.k` non-degenerate centroids when `data.len() >= k`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.k == 0`.
    pub fn train(data: &VectorSet, config: &KMeansConfig) -> Self {
        assert!(!data.is_empty(), "cannot train k-means on an empty set");
        assert!(config.k > 0, "k must be positive");
        let k = config.k.min(data.len());
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = plus_plus_init(data, k, &mut rng);

        let mut assignment = vec![0usize; data.len()];
        for _ in 0..config.max_iters {
            let changed = assign_parallel(data, &centroids, &mut assignment);
            update_centroids(data, &assignment, &mut centroids, &mut rng);
            if changed == 0 {
                break;
            }
        }
        Self { centroids }
    }

    /// Wraps pre-existing centroids (e.g. loaded from a file) as a model.
    pub fn from_centroids(centroids: VectorSet) -> Self {
        Self { centroids }
    }

    /// The learned centroids.
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Index of the centroid nearest (in L2) to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the centroid dimension.
    pub fn assign(&self, v: &[f32]) -> usize {
        assert_eq!(v.len(), self.centroids.dim());
        nearest(v, &self.centroids).0
    }

    /// Assigns every row of `data` to its nearest centroid, in parallel.
    pub fn assign_all(&self, data: &VectorSet) -> Vec<usize> {
        let mut out = vec![0usize; data.len()];
        assign_parallel(data, &self.centroids, &mut out);
        out
    }

    /// Mean squared distance from each point to its assigned centroid — the
    /// k-means objective, exposed so training quality can be asserted.
    pub fn inertia(&self, data: &VectorSet) -> f64 {
        let mut total = 0.0f64;
        for v in data.iter() {
            total += nearest(v, &self.centroids).1 as f64;
        }
        total / data.len().max(1) as f64
    }
}

fn nearest(v: &[f32], centroids: &VectorSet) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = metric::l2_squared(v, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

fn plus_plus_init(data: &VectorSet, k: usize, rng: &mut StdRng) -> VectorSet {
    let mut centroids = VectorSet::zeros(data.dim(), 0);
    let first = rng.gen_range(0..data.len());
    centroids.push(data.row(first));

    let mut dist: Vec<f32> = data
        .iter()
        .map(|v| metric::l2_squared(v, centroids.row(0)))
        .collect();
    while centroids.len() < k {
        let total: f64 = dist.iter().map(|&d| d as f64).sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = data.len() - 1;
            for (i, &d) in dist.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.push(data.row(next));
        let c = centroids.row(centroids.len() - 1).to_vec();
        for (i, v) in data.iter().enumerate() {
            let d = metric::l2_squared(v, &c);
            if d < dist[i] {
                dist[i] = d;
            }
        }
    }
    centroids
}

/// Reassigns every point; returns the number of points whose assignment
/// changed. Parallel across point chunks.
fn assign_parallel(data: &VectorSet, centroids: &VectorSet, assignment: &mut [usize]) -> usize {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let chunk = data.len().div_ceil(threads).max(1);
    let changed = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for (ci, out) in assignment.chunks_mut(chunk).enumerate() {
            let changed = &changed;
            s.spawn(move || {
                let base = ci * chunk;
                let mut local = 0;
                for (off, slot) in out.iter_mut().enumerate() {
                    let a = nearest(data.row(base + off), centroids).0;
                    if a != *slot {
                        local += 1;
                        *slot = a;
                    }
                }
                changed.fetch_add(local, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });
    changed.into_inner()
}

fn update_centroids(
    data: &VectorSet,
    assignment: &[usize],
    centroids: &mut VectorSet,
    rng: &mut StdRng,
) {
    let dim = data.dim();
    let k = centroids.len();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (i, v) in data.iter().enumerate() {
        let a = assignment[i];
        counts[a] += 1;
        for (j, &x) in v.iter().enumerate() {
            sums[a * dim + j] += x as f64;
        }
    }
    for c in 0..k {
        if counts[c] == 0 {
            // Re-seed an empty cluster from a random point.
            let pick = rng.gen_range(0..data.len());
            let row = data.row(pick).to_vec();
            centroids.row_mut(c).copy_from_slice(&row);
        } else {
            for j in 0..dim {
                centroids.row_mut(c)[j] = (sums[c * dim + j] / counts[c] as f64) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four tight blobs at the corners of a square.
    fn blobs() -> VectorSet {
        let corners = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)];
        VectorSet::from_fn(2, 400, |r, c| {
            let (cx, cy) = corners[r % 4];
            let jitter = ((r * 37 + c * 11) % 100) as f32 / 1000.0;
            if c == 0 {
                cx + jitter
            } else {
                cy + jitter
            }
        })
    }

    #[test]
    fn recovers_four_blobs() {
        let data = blobs();
        let model = KMeans::train(
            &data,
            &KMeansConfig {
                k: 4,
                max_iters: 30,
                seed: 42,
            },
        );
        assert_eq!(model.k(), 4);
        // Each centroid should be very close to one corner.
        let corners = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (10.0, 10.0)];
        for c in model.centroids().iter() {
            let nearest_corner = corners
                .iter()
                .map(|&(x, y)| metric::l2_squared(c, &[x, y]))
                .fold(f32::INFINITY, f32::min);
            assert!(nearest_corner < 0.1, "centroid {c:?} far from every corner");
        }
        assert!(model.inertia(&data) < 0.1);
    }

    #[test]
    fn assignment_is_consistent_with_assign() {
        let data = blobs();
        let model = KMeans::train(
            &data,
            &KMeansConfig {
                k: 4,
                max_iters: 30,
                seed: 1,
            },
        );
        let all = model.assign_all(&data);
        for i in (0..data.len()).step_by(17) {
            assert_eq!(all[i], model.assign(data.row(i)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let cfg = KMeansConfig {
            k: 4,
            max_iters: 10,
            seed: 9,
        };
        let a = KMeans::train(&data, &cfg);
        let b = KMeans::train(&data, &cfg);
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn k_clamped_to_data_len() {
        let data = VectorSet::from_rows(2, &[0.0, 0.0, 1.0, 1.0]);
        let model = KMeans::train(
            &data,
            &KMeansConfig {
                k: 10,
                max_iters: 5,
                seed: 0,
            },
        );
        assert_eq!(model.k(), 2);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs();
        let few = KMeans::train(
            &data,
            &KMeansConfig {
                k: 2,
                max_iters: 20,
                seed: 3,
            },
        );
        let many = KMeans::train(
            &data,
            &KMeansConfig {
                k: 8,
                max_iters: 20,
                seed: 3,
            },
        );
        assert!(many.inertia(&data) <= few.inertia(&data));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_data_rejected() {
        let data = VectorSet::zeros(2, 0);
        let _ = KMeans::train(&data, &KMeansConfig::default());
    }
}
