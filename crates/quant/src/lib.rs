//! Training substrate for the ANNA reproduction.
//!
//! The paper consumes "trained models where each is a set of i) a list of
//! centroids, ii) codebooks, and iii) encoded vectors" (Section V-A),
//! produced by Faiss or ScaNN. This crate builds those models from scratch:
//!
//! * [`kmeans`] — Lloyd's algorithm with k-means++ initialization, used for
//!   both the coarse (cluster) level and the per-subspace codebook level.
//! * [`pq`] — product quantization codebooks ([`PqCodebook`]): training,
//!   encoding, decoding (Section II-B).
//! * [`anisotropic`] — ScaNN-style score-aware (anisotropic) codebook
//!   training, the objective-function difference between Faiss and ScaNN
//!   models the paper evaluates (Guo et al., ICML 2020).
//! * [`opq`] — Optimized Product Quantization (learned orthogonal
//!   rotation), one of the PQ variations Section VI says ANNA supports.
//! * [`additive`] — Additive Quantization (full-dimensional codeword
//!   sums), the "slight extension" Section VI sketches for ANNA.
//! * [`codes`] — sub-byte code packing: `k* = 16` stores two 4-bit
//!   identifiers per byte, `k* = 256` one byte each (Section II-D notes the
//!   CPU's struggle with exactly this 4-bit format; ANNA's EFM unpacker
//!   handles it in hardware).
//!
//! # Example: train and use a PQ codebook
//!
//! ```
//! use anna_quant::pq::{PqCodebook, PqConfig};
//! use anna_vector::VectorSet;
//!
//! let data = VectorSet::from_fn(8, 256, |r, c| ((r * 31 + c * 7) % 17) as f32);
//! let cfg = PqConfig { m: 4, kstar: 16, iters: 8, seed: 7 };
//! let book = PqCodebook::train(&data, &cfg);
//! let codes = book.encode(data.row(3));
//! let approx = book.decode(&codes);
//! assert_eq!(approx.len(), 8);
//! ```

#![deny(missing_docs)]

pub mod additive;
pub mod anisotropic;
pub mod codes;
pub mod kmeans;
pub mod linalg;
pub mod opq;
pub mod pq;

pub use codes::{CodeWidth, PackedCodes};
pub use kmeans::{KMeans, KMeansConfig};
pub use opq::{Opq, OpqConfig};
pub use pq::{PqCodebook, PqConfig};
