//! Tiny dense linear-algebra helpers for codebook optimization.
//!
//! The anisotropic codeword update (see [`crate::anisotropic`]) solves one
//! small symmetric linear system per codeword (size `D/M`, typically 2–64).
//! A dependency-free Gaussian elimination with partial pivoting is plenty at
//! that scale.

/// A small dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SmallMat {
    n: usize,
    data: Vec<f64>,
}

impl SmallMat {
    /// Creates an `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix size must be positive");
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Creates the identity matrix scaled by `s`.
    pub fn scaled_identity(n: usize, s: f64) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = s;
        }
        m
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds `s · u uᵀ` (a scaled outer product) to the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != self.n()`.
    pub fn add_outer(&mut self, u: &[f64], s: f64) {
        assert_eq!(u.len(), self.n);
        for i in 0..self.n {
            let si = s * u[i];
            for (j, &uj) in u.iter().enumerate() {
                self.data[i * self.n + j] += si * uj;
            }
        }
    }

    /// Adds another matrix element-wise.
    ///
    /// # Panics
    ///
    /// Panics if the orders differ.
    pub fn add(&mut self, other: &SmallMat) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.n()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n);
        (0..self.n)
            .map(|i| (0..self.n).map(|j| self.data[i * self.n + j] * v[j]).sum())
            .collect()
    }

    /// Solves `A x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()`.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let (pivot_row, pivot_val) = (col..n)
                .map(|r| (r, a[r * n + col].abs()))
                .fold((col, 0.0), |acc, cur| if cur.1 > acc.1 { cur } else { acc });
            if pivot_val < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let inv = 1.0 / a[col * n + col];
            for r in col + 1..n {
                let f = a[r * n + col] * inv;
                if f == 0.0 {
                    continue;
                }
                for j in col..n {
                    a[r * n + j] -= f * a[col * n + j];
                }
                x[r] -= f * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in col + 1..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        Some(x)
    }
}

impl SmallMat {
    /// Matrix-matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if the orders differ.
    pub fn mul(&self, other: &SmallMat) -> SmallMat {
        assert_eq!(self.n, other.n);
        let n = self.n;
        let mut out = SmallMat::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.data[i * n + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out.data[i * n + j] += a * other.data[k * n + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> SmallMat {
        let n = self.n;
        let mut out = SmallMat::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out.data[j * n + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Eigendecomposition of a **symmetric** matrix by cyclic Jacobi
    /// rotations: returns `(eigenvalues, V)` with `self ≈ V diag(λ) Vᵀ`,
    /// `V` orthogonal (columns are eigenvectors).
    ///
    /// Intended for the small (`D ≤ 128`) systems of OPQ's Procrustes
    /// step; converges to machine precision in a handful of sweeps.
    pub fn jacobi_eigen(&self) -> (Vec<f64>, SmallMat) {
        let n = self.n;
        let mut a = self.clone();
        let mut v = SmallMat::scaled_identity(n, 1.0);
        for _sweep in 0..64 {
            let mut off = 0.0f64;
            for i in 0..n {
                for j in i + 1..n {
                    off += a.data[i * n + j] * a.data[i * n + j];
                }
            }
            if off.sqrt() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in p + 1..n {
                    let apq = a.data[p * n + q];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a.data[p * n + p];
                    let aqq = a.data[q * n + q];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // A <- Jᵀ A J for the (p, q) rotation.
                    for k in 0..n {
                        let akp = a.data[k * n + p];
                        let akq = a.data[k * n + q];
                        a.data[k * n + p] = c * akp - s * akq;
                        a.data[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a.data[p * n + k];
                        let aqk = a.data[q * n + k];
                        a.data[p * n + k] = c * apk - s * aqk;
                        a.data[q * n + k] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v.data[k * n + p];
                        let vkq = v.data[k * n + q];
                        v.data[k * n + p] = c * vkp - s * vkq;
                        v.data[k * n + q] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let eig = (0..n).map(|i| a.data[i * n + i]).collect();
        (eig, v)
    }

    /// The orthogonal polar factor of the matrix — the solution `R = U Vᵀ`
    /// of the orthogonal Procrustes problem for `M = U Σ Vᵀ`.
    ///
    /// Computed through the Jacobi eigendecomposition of the augmented
    /// symmetric matrix `[[0, Mᵀ], [M, 0]]`, whose positive eigenpairs
    /// `σᵢ, [vᵢ; uᵢ]/√2` give the SVD without squaring the condition
    /// number (unlike the `(MᵀM)^{-1/2}` route, which loses orthogonality
    /// on ill-conditioned cross-covariances).
    ///
    /// Returns `None` if the matrix is numerically rank-deficient.
    pub fn polar_orthogonal(&self) -> Option<SmallMat> {
        let n = self.n;
        let mut aug = SmallMat::zeros(2 * n);
        for i in 0..n {
            for j in 0..n {
                let m = self.data[i * n + j];
                aug[(j, n + i)] = m; // Mᵀ block (top-right)
                aug[(n + i, j)] = m; // M block (bottom-left)
            }
        }
        let (eig, w) = aug.jacobi_eigen();
        // Pick the n largest eigenvalues (the +σ side).
        let mut order: Vec<usize> = (0..2 * n).collect();
        order.sort_by(|&a, &b| eig[b].partial_cmp(&eig[a]).unwrap());
        let sigma_max = eig[order[0]].max(0.0);
        if sigma_max <= 0.0 {
            return None;
        }
        let mut r = SmallMat::zeros(n);
        for &k in order.iter().take(n) {
            if eig[k] <= sigma_max * 1e-9 {
                return None; // rank deficient
            }
            // Eigenvector [v; u]/√2: v in rows 0..n, u in rows n..2n.
            // R = U Vᵀ = Σᵢ uᵢ vᵢᵀ (the 1/√2 factors cancel after the
            // 2x from uᵢvᵢᵀ normalization: (√2 u)(√2 v)ᵀ/2).
            for i in 0..n {
                let u = w[(n + i, k)];
                if u == 0.0 {
                    continue;
                }
                for j in 0..n {
                    r.data[i * n + j] += 2.0 * u * w[(j, k)];
                }
            }
        }
        Some(r)
    }
}

impl std::ops::Index<(usize, usize)> for SmallMat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.n + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for SmallMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.n + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let m = SmallMat::scaled_identity(3, 1.0);
        let x = m.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let mut m = SmallMat::zeros(2);
        m[(0, 0)] = 2.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 3.0;
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let mut m = SmallMat::zeros(2);
        m[(0, 0)] = 1.0;
        m[(0, 1)] = 2.0;
        m[(1, 0)] = 2.0;
        m[(1, 1)] = 4.0;
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut m = SmallMat::zeros(2);
        m[(0, 0)] = 0.0;
        m[(0, 1)] = 1.0;
        m[(1, 0)] = 1.0;
        m[(1, 1)] = 0.0;
        let x = m.solve(&[7.0, 9.0]).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn outer_product_accumulates() {
        let mut m = SmallMat::zeros(2);
        m.add_outer(&[1.0, 2.0], 2.0);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(1, 1)], 8.0);
    }

    #[test]
    fn jacobi_diagonalizes_symmetric_matrix() {
        // A = [[4, 1, 0], [1, 3, 1], [0, 1, 2]] is symmetric.
        let mut a = SmallMat::zeros(3);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 3.0;
        a[(1, 2)] = 1.0;
        a[(2, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let (eig, v) = a.jacobi_eigen();
        // Reconstruct V diag(eig) Vᵀ and compare.
        let mut recon = SmallMat::zeros(3);
        for i in 0..3 {
            for r in 0..3 {
                for c in 0..3 {
                    recon[(r, c)] += v[(r, i)] * eig[i] * v[(c, i)];
                }
            }
        }
        for r in 0..3 {
            for c in 0..3 {
                assert!((recon[(r, c)] - a[(r, c)]).abs() < 1e-9);
            }
        }
        // Trace and determinant invariants.
        let trace: f64 = eig.iter().sum();
        assert!((trace - 9.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let mut a = SmallMat::zeros(4);
        for i in 0..4 {
            for j in 0..4 {
                a[(i, j)] = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            }
        }
        let (_, v) = a.jacobi_eigen();
        let vtv = v.transpose().mul(&v);
        for i in 0..4 {
            for j in 0..4 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (vtv[(i, j)] - want).abs() < 1e-9,
                    "VᵀV[{i}{j}] = {}",
                    vtv[(i, j)]
                );
            }
        }
    }

    #[test]
    fn polar_factor_of_orthogonal_matrix_is_itself() {
        // A rotation by 30 degrees.
        let (c, s) = (0.5f64.sqrt(), 0.5f64.sqrt());
        let mut r = SmallMat::zeros(2);
        r[(0, 0)] = c;
        r[(0, 1)] = -s;
        r[(1, 0)] = s;
        r[(1, 1)] = c;
        let p = r.polar_orthogonal().unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((p[(i, j)] - r[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn polar_factor_is_orthogonal() {
        let mut m = SmallMat::zeros(3);
        let mut x = 1.0;
        for i in 0..3 {
            for j in 0..3 {
                x = (x * 1.7 + 0.3) % 2.0;
                m[(i, j)] = x + if i == j { 2.0 } else { 0.0 };
            }
        }
        let r = m.polar_orthogonal().unwrap();
        let rtr = r.transpose().mul(&r);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((rtr[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn polar_factor_of_singular_matrix_is_none() {
        let m = SmallMat::zeros(2);
        assert!(m.polar_orthogonal().is_none());
    }

    #[test]
    fn solve_matches_mul_vec_roundtrip() {
        let mut m = SmallMat::scaled_identity(4, 3.0);
        m.add_outer(&[1.0, -1.0, 0.5, 2.0], 0.7);
        let want = vec![0.3, -1.2, 4.5, 0.01];
        let b = m.mul_vec(&want);
        let got = m.solve(&b).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-9);
        }
    }
}
