//! Packed storage for encoded vectors.
//!
//! With `k* = 16` each identifier is 4 bits and two identifiers share a
//! byte; with `k* = 256` each identifier is one byte. Section II-D of the
//! paper observes that CPUs handle the 4-bit layout poorly (streams of
//! `VPSRLW` shifts); ANNA's Encoded Vector Fetch Module unpacks it with
//! dedicated shifters. This module is the software model of that layout and
//! unpacker.

use serde::{Deserialize, Serialize};

/// Identifier width of packed codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodeWidth {
    /// 4-bit identifiers (`k* = 16`), two per byte, low nibble first.
    U4,
    /// 8-bit identifiers (`k* = 256`).
    U8,
}

impl CodeWidth {
    /// Bits per identifier.
    pub fn bits(self) -> u32 {
        match self {
            CodeWidth::U4 => 4,
            CodeWidth::U8 => 8,
        }
    }

    /// The `k*` this width supports.
    pub fn kstar(self) -> usize {
        1usize << self.bits()
    }

    /// Bytes needed to store one encoded vector of `m` identifiers
    /// (`M · log2 k* / 8`, Section II-B).
    pub fn vector_bytes(self, m: usize) -> usize {
        (m * self.bits() as usize).div_ceil(8)
    }
}

/// A buffer of encoded vectors, each `m` identifiers wide, packed at a given
/// [`CodeWidth`].
///
/// # Example
///
/// ```
/// use anna_quant::{CodeWidth, PackedCodes};
///
/// let mut codes = PackedCodes::new(3, CodeWidth::U4);
/// codes.push(&[1, 15, 7]);
/// codes.push(&[0, 2, 3]);
/// assert_eq!(codes.get(0), vec![1, 15, 7]);
/// assert_eq!(codes.get(1), vec![0, 2, 3]);
/// assert_eq!(codes.bytes().len(), 4); // two vectors * 2 bytes each
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedCodes {
    m: usize,
    width: CodeWidth,
    len: usize,
    data: Vec<u8>,
}

impl PackedCodes {
    /// Creates an empty buffer for vectors of `m` identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn new(m: usize, width: CodeWidth) -> Self {
        Self::with_capacity(m, width, 0)
    }

    /// Creates an empty buffer with space reserved for `cap` vectors.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn with_capacity(m: usize, width: CodeWidth, cap: usize) -> Self {
        assert!(m > 0, "m must be positive");
        Self {
            m,
            width,
            len: 0,
            data: Vec::with_capacity(cap * width.vector_bytes(m)),
        }
    }

    /// Identifiers per vector.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The identifier width.
    pub fn width(&self) -> CodeWidth {
        self.width
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes per stored vector.
    pub fn vector_bytes(&self) -> usize {
        self.width.vector_bytes(self.m)
    }

    /// The raw packed bytes (what ANNA's EFM streams from DRAM).
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Appends one encoded vector.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != self.m()` or an identifier exceeds the
    /// width.
    pub fn push(&mut self, codes: &[u8]) {
        assert_eq!(codes.len(), self.m, "code count mismatch");
        match self.width {
            CodeWidth::U8 => self.data.extend_from_slice(codes),
            CodeWidth::U4 => {
                for pair in codes.chunks(2) {
                    let lo = pair[0];
                    assert!(lo < 16, "identifier {lo} exceeds 4 bits");
                    let hi = if pair.len() == 2 {
                        assert!(pair[1] < 16, "identifier {} exceeds 4 bits", pair[1]);
                        pair[1]
                    } else {
                        0
                    };
                    self.data.push(lo | (hi << 4));
                }
            }
        }
        self.len += 1;
    }

    /// Unpacks vector `i` into identifiers (the EFM unpacker model).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Vec<u8> {
        let mut out = vec![0u8; self.m];
        self.read_into(i, &mut out);
        out
    }

    /// Unpacks vector `i` into a caller-provided buffer (avoids allocation
    /// in scan loops).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()` or `out.len() != self.m()`.
    pub fn read_into(&self, i: usize, out: &mut [u8]) {
        assert!(
            i < self.len,
            "vector index {i} out of range (len {})",
            self.len
        );
        assert_eq!(out.len(), self.m);
        let vb = self.vector_bytes();
        let row = &self.data[i * vb..(i + 1) * vb];
        match self.width {
            CodeWidth::U8 => out.copy_from_slice(row),
            CodeWidth::U4 => {
                for (j, slot) in out.iter_mut().enumerate() {
                    let byte = row[j / 2];
                    *slot = if j % 2 == 0 { byte & 0x0F } else { byte >> 4 };
                }
            }
        }
    }

    /// Reconstructs a buffer from raw packed bytes (deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal `len` vectors at this
    /// width/m.
    pub fn from_bytes(m: usize, width: CodeWidth, len: usize, data: Vec<u8>) -> Self {
        assert!(m > 0, "m must be positive");
        assert_eq!(
            data.len(),
            len * width.vector_bytes(m),
            "packed byte length inconsistent with m/width/len"
        );
        Self {
            m,
            width,
            len,
            data,
        }
    }

    /// Borrows the packed bytes of vectors `[start, start + count)` — the
    /// contiguous region the EFM fetches for one cluster.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `self.len()`.
    pub fn slice_bytes(&self, start: usize, count: usize) -> &[u8] {
        assert!(start + count <= self.len, "slice out of range");
        let vb = self.vector_bytes();
        &self.data[start * vb..(start + count) * vb]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_roundtrip() {
        let mut p = PackedCodes::new(4, CodeWidth::U8);
        p.push(&[0, 255, 128, 1]);
        assert_eq!(p.get(0), vec![0, 255, 128, 1]);
        assert_eq!(p.vector_bytes(), 4);
    }

    #[test]
    fn u4_roundtrip_even_m() {
        let mut p = PackedCodes::new(4, CodeWidth::U4);
        p.push(&[1, 2, 3, 4]);
        p.push(&[15, 0, 7, 8]);
        assert_eq!(p.get(0), vec![1, 2, 3, 4]);
        assert_eq!(p.get(1), vec![15, 0, 7, 8]);
        assert_eq!(p.vector_bytes(), 2);
    }

    #[test]
    fn u4_roundtrip_odd_m() {
        let mut p = PackedCodes::new(3, CodeWidth::U4);
        p.push(&[9, 10, 11]);
        assert_eq!(p.get(0), vec![9, 10, 11]);
        assert_eq!(p.vector_bytes(), 2); // 3 nibbles round up to 2 bytes
    }

    #[test]
    fn nibble_order_is_low_first() {
        let mut p = PackedCodes::new(2, CodeWidth::U4);
        p.push(&[0x1, 0x2]);
        assert_eq!(p.bytes(), &[0x21]);
    }

    #[test]
    #[should_panic(expected = "exceeds 4 bits")]
    fn u4_rejects_wide_identifier() {
        let mut p = PackedCodes::new(2, CodeWidth::U4);
        p.push(&[16, 0]);
    }

    #[test]
    fn width_math_matches_paper() {
        // Section II-B example: D=6, M=3, k*=4 -> 6 bits -> "6/8 bytes";
        // we round to whole bytes as any byte-addressed memory must.
        assert_eq!(CodeWidth::U4.vector_bytes(128), 64);
        assert_eq!(CodeWidth::U8.vector_bytes(64), 64);
        assert_eq!(CodeWidth::U4.kstar(), 16);
        assert_eq!(CodeWidth::U8.kstar(), 256);
    }

    #[test]
    fn slice_bytes_selects_cluster_region() {
        let mut p = PackedCodes::new(2, CodeWidth::U8);
        for i in 0..10u8 {
            p.push(&[i, i + 100]);
        }
        let s = p.slice_bytes(3, 2);
        assert_eq!(s, &[3, 103, 4, 104]);
    }

    #[test]
    fn read_into_avoids_allocation() {
        let mut p = PackedCodes::new(4, CodeWidth::U4);
        p.push(&[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        p.read_into(0, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_out_of_range() {
        let p = PackedCodes::new(2, CodeWidth::U8);
        let _ = p.get(0);
    }
}
