//! Additive quantization (AQ, Babenko & Lempitsky, CVPR 2014 — reference
//! \[3\] of the ANNA paper).
//!
//! Where PQ concatenates `M` sub-space codewords, AQ *sums* `M` full-
//! dimensional codewords: `x ≈ Σᵢ Bᵢ[cᵢ]` with each `Bᵢ[cᵢ] ∈ ℝᴰ`. The
//! paper's Section VI notes "ANNA can also be slightly extended to
//! support other PQ variations such as AQ, which utilizes M identifiers
//! each associated with D-dimensional codeword" — the scan stays `M` LUT
//! reads plus a reduction:
//!
//! * inner product: `s = Σᵢ Lᵢ[cᵢ]` with `Lᵢ[c] = q·Bᵢ[c]` (LUT build
//!   now costs `M·k*·D` multiply-adds instead of `k*·D`, since every
//!   codeword is full-dimensional);
//! * L2: `-‖q − x̂‖² = 2·Σᵢ Lᵢ[cᵢ] − ‖x̂‖² − ‖q‖²`. The cross terms
//!   between codewords make the sum-of-LUT trick insufficient on its own,
//!   so each encoded vector carries a 2-byte norm correction `‖x̂‖²`
//!   (fetched by the EFM alongside the identifiers); `‖q‖²` is
//!   rank-invariant and dropped.
//!
//! Training is residual (stage-wise) k-means; encoding is greedy or beam
//! search over stages.

use crate::kmeans::{KMeans, KMeansConfig};
use anna_vector::{f16, metric, VectorSet};
use serde::{Deserialize, Serialize};

/// Configuration for [`AqCodebook::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AqConfig {
    /// Number of additive stages `M`.
    pub m: usize,
    /// Codewords per stage `k*`.
    pub kstar: usize,
    /// k-means iterations per stage.
    pub iters: usize,
    /// Beam width for encoding (1 = greedy residual quantization).
    pub beam: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AqConfig {
    fn default() -> Self {
        Self {
            m: 4,
            kstar: 16,
            iters: 10,
            beam: 1,
            seed: 0,
        }
    }
}

/// A trained additive codebook: `M` stages of `k*` full-dimensional
/// codewords.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AqCodebook {
    dim: usize,
    beam: usize,
    /// `m` codebooks, each `kstar × dim`.
    books: Vec<VectorSet>,
}

/// An AQ-encoded vector: `M` identifiers plus the 2-byte norm correction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AqCode {
    /// Stage identifiers.
    pub codes: Vec<u8>,
    /// `‖x̂‖²` rounded through the 2-byte on-chip format.
    pub norm_sq: f32,
}

impl AqCodebook {
    /// Trains stage-wise on residuals: stage `i`'s k-means fits what the
    /// first `i` stages left unexplained.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or the config is degenerate.
    pub fn train(data: &VectorSet, config: &AqConfig) -> Self {
        assert!(!data.is_empty(), "cannot train AQ on an empty set");
        assert!(
            config.m > 0 && config.kstar > 1 && config.beam > 0,
            "degenerate config"
        );
        let dim = data.dim();
        let mut residual = data.clone();
        let mut books = Vec::with_capacity(config.m);
        for stage in 0..config.m {
            let km = KMeans::train(
                &residual,
                &KMeansConfig {
                    k: config.kstar,
                    max_iters: config.iters,
                    seed: config.seed.wrapping_add(stage as u64),
                },
            );
            // Subtract each point's assigned codeword.
            let assign = km.assign_all(&residual);
            for (i, &a) in assign.iter().enumerate() {
                let c = km.centroids().row(a).to_vec();
                for (v, w) in residual.row_mut(i).iter_mut().zip(&c) {
                    *v -= w;
                }
            }
            books.push(km.centroids().clone());
        }
        Self {
            dim,
            beam: config.beam,
            books,
        }
    }

    /// Vector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stages `M`.
    pub fn m(&self) -> usize {
        self.books.len()
    }

    /// Codewords per stage `k*`.
    pub fn kstar(&self) -> usize {
        self.books[0].len()
    }

    /// Stage `i`'s codebook.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.m()`.
    pub fn book(&self, i: usize) -> &VectorSet {
        &self.books[i]
    }

    /// Encodes a vector by beam search over stages (beam 1 = greedy).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn encode(&self, v: &[f32]) -> AqCode {
        assert_eq!(v.len(), self.dim);
        // Beam state: (codes so far, current residual, error).
        let mut beam: Vec<(Vec<u8>, Vec<f32>, f32)> =
            vec![(Vec::new(), v.to_vec(), metric::dot(v, v))];
        for book in &self.books {
            let mut next: Vec<(Vec<u8>, Vec<f32>, f32)> = Vec::new();
            for (codes, residual, _) in &beam {
                for (c, w) in book.iter().enumerate() {
                    let nr = metric::sub(residual, w);
                    let err = metric::dot(&nr, &nr);
                    let mut nc = codes.clone();
                    nc.push(c as u8);
                    next.push((nc, nr, err));
                }
            }
            next.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap());
            next.truncate(self.beam);
            beam = next;
        }
        let (codes, _, _) = beam.into_iter().next().expect("beam is non-empty");
        let xhat = self.decode(&codes);
        AqCode {
            codes,
            norm_sq: f16::round_trip(metric::dot(&xhat, &xhat)),
        }
    }

    /// Reconstructs `x̂ = Σᵢ Bᵢ[cᵢ]`.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != self.m()` or an identifier is out of
    /// range.
    pub fn decode(&self, codes: &[u8]) -> Vec<f32> {
        assert_eq!(codes.len(), self.m());
        let mut out = vec![0.0f32; self.dim];
        for (i, &c) in codes.iter().enumerate() {
            for (o, w) in out.iter_mut().zip(self.books[i].row(c as usize)) {
                *o += w;
            }
        }
        out
    }

    /// Builds the query's per-stage LUTs: `Lᵢ[c] = q·Bᵢ[c]` (entries f16,
    /// as the hardware SRAM stores them). Cost: `M·k*·D` multiply-adds.
    pub fn build_lut(&self, q: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(q.len(), self.dim);
        self.books
            .iter()
            .map(|b| {
                (0..b.len())
                    .map(|c| f16::round_trip(metric::dot(q, b.row(c))))
                    .collect()
            })
            .collect()
    }

    /// Inner-product score from the LUTs: `Σᵢ Lᵢ[cᵢ]`.
    pub fn score_ip(lut: &[Vec<f32>], code: &AqCode) -> f32 {
        code.codes
            .iter()
            .enumerate()
            .map(|(i, &c)| lut[i][c as usize])
            .sum()
    }

    /// L2 similarity (up to the rank-invariant `−‖q‖²`):
    /// `2·Σᵢ Lᵢ[cᵢ] − ‖x̂‖²`.
    pub fn score_l2(lut: &[Vec<f32>], code: &AqCode) -> f32 {
        2.0 * Self::score_ip(lut, code) - code.norm_sq
    }

    /// Mean squared reconstruction error over a dataset.
    pub fn reconstruction_error(&self, data: &VectorSet) -> f64 {
        let mut total = 0.0f64;
        for v in data.iter() {
            let approx = self.decode(&self.encode(v).codes);
            total += metric::l2_squared(v, &approx) as f64;
        }
        total / data.len().max(1) as f64
    }

    /// Bytes per encoded vector: `M·log2(k*)/8` identifiers plus the
    /// 2-byte norm correction (the "slight extension" to the EFM fetch).
    pub fn encoded_bytes(&self) -> usize {
        let bits = (usize::BITS - 1) - self.kstar().leading_zeros();
        (self.m() * bits as usize).div_ceil(8) + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::{PqCodebook, PqConfig};

    fn data() -> VectorSet {
        VectorSet::from_fn(6, 300, |r, c| {
            let blob = (r % 5) as f32;
            blob * 4.0 + ((r * 17 + c * 3) % 13) as f32 * 0.3 + (c as f32) * 0.1
        })
    }

    fn cfg(beam: usize) -> AqConfig {
        AqConfig {
            m: 3,
            kstar: 8,
            iters: 10,
            beam,
            seed: 0,
        }
    }

    #[test]
    fn more_stages_reduce_error() {
        let d = data();
        let one = AqCodebook::train(&d, &AqConfig { m: 1, ..cfg(1) });
        let three = AqCodebook::train(&d, &cfg(1));
        assert!(
            three.reconstruction_error(&d) < one.reconstruction_error(&d),
            "3 stages ({}) must beat 1 ({})",
            three.reconstruction_error(&d),
            one.reconstruction_error(&d)
        );
    }

    #[test]
    fn beam_encoding_never_loses_to_greedy() {
        let d = data();
        let book = AqCodebook::train(&d, &cfg(1));
        let wide = AqCodebook {
            beam: 8,
            ..book.clone()
        };
        let mut greedy_err = 0.0f64;
        let mut beam_err = 0.0f64;
        for i in (0..d.len()).step_by(13) {
            let v = d.row(i);
            let g = book.decode(&book.encode(v).codes);
            let b = wide.decode(&wide.encode(v).codes);
            greedy_err += metric::l2_squared(v, &g) as f64;
            beam_err += metric::l2_squared(v, &b) as f64;
        }
        assert!(
            beam_err <= greedy_err + 1e-6,
            "beam {beam_err} vs greedy {greedy_err}"
        );
    }

    #[test]
    fn ip_score_matches_decoded_dot_product() {
        let d = data();
        let book = AqCodebook::train(&d, &cfg(2));
        let q = [0.5, -1.0, 2.0, 0.1, 0.3, -0.7];
        let lut = book.build_lut(&q);
        for i in (0..d.len()).step_by(29) {
            let code = book.encode(d.row(i));
            let want = metric::dot(&q, &book.decode(&code.codes));
            let got = AqCodebook::score_ip(&lut, &code);
            assert!(
                (want - got).abs() < 0.05 * (1.0 + want.abs()),
                "{want} vs {got}"
            );
        }
    }

    #[test]
    fn l2_score_orders_like_true_distance() {
        let d = data();
        let book = AqCodebook::train(&d, &cfg(2));
        let q = d.row(0).to_vec();
        let lut = book.build_lut(&q);
        // Rank a handful of vectors by the hardware score and by the true
        // decoded distance; orders must agree.
        let rows = [0usize, 40, 80, 120, 200];
        let mut by_score: Vec<(usize, f32)> = rows
            .iter()
            .map(|&i| (i, AqCodebook::score_l2(&lut, &book.encode(d.row(i)))))
            .collect();
        let mut by_dist: Vec<(usize, f32)> = rows
            .iter()
            .map(|&i| {
                let xhat = book.decode(&book.encode(d.row(i)).codes);
                (i, -metric::l2_squared(&q, &xhat))
            })
            .collect();
        by_score.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        by_dist.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let score_order: Vec<usize> = by_score.iter().map(|&(i, _)| i).collect();
        let dist_order: Vec<usize> = by_dist.iter().map(|&(i, _)| i).collect();
        assert_eq!(score_order, dist_order);
    }

    #[test]
    fn aq_beats_pq_at_matched_bit_budget_on_full_rank_data() {
        // AQ's full-dimensional codewords capture cross-subspace structure
        // a subspace-factorized PQ cannot.
        let d = data();
        let aq = AqCodebook::train(
            &d,
            &AqConfig {
                m: 3,
                kstar: 8,
                iters: 12,
                beam: 4,
                seed: 1,
            },
        );
        let pq = PqCodebook::train(
            &d,
            &PqConfig {
                m: 3,
                kstar: 8,
                iters: 12,
                seed: 1,
            },
        );
        let ae = aq.reconstruction_error(&d);
        let pe = pq.reconstruction_error(&d);
        assert!(
            ae <= pe * 1.1,
            "AQ ({ae}) should be competitive with PQ ({pe})"
        );
    }

    #[test]
    fn encoded_bytes_include_norm_correction() {
        let d = data();
        let book = AqCodebook::train(&d, &cfg(1));
        // 3 stages x 3 bits -> 2 bytes, plus 2-byte norm.
        assert_eq!(book.encoded_bytes(), 4);
    }
}
