//! Optimized Product Quantization (OPQ, Ge et al., TPAMI 2013 — reference
//! \[16\] of the ANNA paper).
//!
//! OPQ learns an orthogonal rotation `R` of the input space so that the
//! rotated data factorizes better across PQ subspaces, then trains ordinary
//! PQ codebooks on `R·x`. Searching applies the same rotation to the query;
//! everything downstream (lookup tables, scan, the ANNA hardware path) is
//! unchanged — which is why the paper lists OPQ among the variations ANNA
//! supports ("OPQ applies rotation to the original database. ANNA can
//! support all these variations since their computation pattern for the
//! search remains the same").
//!
//! Training alternates (the "non-parametric" OPQ procedure):
//! 1. fix `R`, train/encode PQ on the rotated data;
//! 2. fix the codes, solve the orthogonal Procrustes problem
//!    `min_R ‖R·X − X̂‖_F` whose solution is the polar factor of `X̂·Xᵀ`
//!    (computed by [`crate::linalg::SmallMat::polar_orthogonal`]).

use crate::linalg::SmallMat;
use crate::pq::{PqCodebook, PqConfig};
use anna_vector::{metric, VectorSet};
use serde::{Deserialize, Serialize};

/// Configuration for [`Opq::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpqConfig {
    /// Inner PQ configuration.
    pub pq: PqConfig,
    /// Alternating (rotation ↔ codebook) iterations.
    pub outer_iters: usize,
}

impl Default for OpqConfig {
    fn default() -> Self {
        Self {
            pq: PqConfig {
                m: 8,
                kstar: 16,
                iters: 8,
                seed: 0,
            },
            outer_iters: 6,
        }
    }
}

/// A trained OPQ model: an orthogonal rotation plus a PQ codebook over the
/// rotated space.
#[derive(Debug, Clone)]
pub struct Opq {
    dim: usize,
    /// Row-major `D × D` rotation.
    rotation: Vec<f32>,
    codebook: PqCodebook,
}

impl Opq {
    /// Trains an OPQ model on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `data.dim()` is not divisible by
    /// `config.pq.m`.
    pub fn train(data: &VectorSet, config: &OpqConfig) -> Self {
        assert!(!data.is_empty(), "cannot train OPQ on an empty set");
        let d = data.dim();
        assert!(
            d.is_multiple_of(config.pq.m),
            "dim {} not divisible by m {}",
            d,
            config.pq.m
        );

        // R starts as identity; rotated holds R·x for every row.
        let mut rotation = SmallMat::scaled_identity(d, 1.0);
        let mut rotated = data.clone();
        let mut codebook = PqCodebook::train(&rotated, &config.pq);

        for _ in 0..config.outer_iters {
            // Step 2: Procrustes. Cross-covariance M = Σ x̂ xᵀ over the
            // *original* data, where x̂ = decode(encode(R x)).
            let mut cross = SmallMat::zeros(d);
            for (i, x) in data.iter().enumerate() {
                let xhat = codebook.decode(&codebook.encode(rotated.row(i)));
                for r in 0..d {
                    if xhat[r] == 0.0 {
                        continue;
                    }
                    for c in 0..d {
                        cross[(r, c)] += xhat[r] as f64 * x[c] as f64;
                    }
                }
            }
            let Some(new_r) = cross.polar_orthogonal() else {
                break; // degenerate data: keep the current rotation
            };
            for r in 0..d {
                for c in 0..d {
                    rotation[(r, c)] = new_r[(r, c)];
                }
            }

            // Step 1: re-rotate and retrain the codebooks.
            for (i, x) in data.iter().enumerate() {
                let rx = apply_rotation_f64(&rotation, x);
                rotated.row_mut(i).copy_from_slice(&rx);
            }
            codebook = PqCodebook::train(&rotated, &config.pq);
        }

        let flat: Vec<f32> = (0..d)
            .flat_map(|r| (0..d).map(move |c| (r, c)))
            .map(|(r, c)| rotation[(r, c)] as f32)
            .collect();
        Self {
            dim: d,
            rotation: flat,
            codebook,
        }
    }

    /// Vector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The learned codebook over the rotated space (hardware-compatible:
    /// feed it to the same LUT/scan machinery as plain PQ).
    pub fn codebook(&self) -> &PqCodebook {
        &self.codebook
    }

    /// Applies the learned rotation to a vector (done to queries before
    /// LUT construction, and to database vectors before encoding).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.dim()`.
    pub fn rotate(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(v.len(), self.dim);
        let d = self.dim;
        (0..d)
            .map(|r| {
                let row = &self.rotation[r * d..(r + 1) * d];
                metric::dot(row, v)
            })
            .collect()
    }

    /// Encodes a vector: rotate, then PQ-encode.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        self.codebook.encode(&self.rotate(v))
    }

    /// Reconstructs the rotated-space approximation from codes.
    pub fn decode_rotated(&self, codes: &[u8]) -> Vec<f32> {
        self.codebook.decode(codes)
    }

    /// Mean squared reconstruction error in the rotated space (equal to
    /// the original-space error because the rotation is orthogonal).
    pub fn reconstruction_error(&self, data: &VectorSet) -> f64 {
        let mut total = 0.0;
        for v in data.iter() {
            let rx = self.rotate(v);
            let approx = self.decode_rotated(&self.encode(v));
            total += metric::l2_squared(&rx, &approx) as f64;
        }
        total / data.len().max(1) as f64
    }

    /// Maximum deviation of `RᵀR` from the identity (orthogonality
    /// check, exposed for validation).
    pub fn orthogonality_error(&self) -> f64 {
        let d = self.dim;
        let mut max = 0.0f64;
        for i in 0..d {
            for j in 0..d {
                let mut s = 0.0f64;
                for k in 0..d {
                    s += self.rotation[k * d + i] as f64 * self.rotation[k * d + j] as f64;
                }
                let want = if i == j { 1.0 } else { 0.0 };
                max = max.max((s - want).abs());
            }
        }
        max
    }
}

fn apply_rotation_f64(r: &SmallMat, v: &[f32]) -> Vec<f32> {
    let d = v.len();
    (0..d)
        .map(|row| {
            let mut s = 0.0f64;
            for (c, &x) in v.iter().enumerate() {
                s += r[(row, c)] * x as f64;
            }
            s as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data whose principal directions straddle the subspace boundary, the
    /// case plain PQ handles poorly and OPQ fixes by rotating.
    fn correlated_data() -> VectorSet {
        VectorSet::from_fn(4, 400, |r, c| {
            let t = (r as f32) * 0.37 + ((r * 13) % 7) as f32;
            // Strong correlation between coords 1 and 2 (different PQ
            // subspaces at m = 2).
            match c {
                0 => (r % 5) as f32 * 0.3,
                1 => t,
                2 => t + ((r * 31) % 3) as f32 * 0.05,
                _ => (r % 3) as f32 * 0.2,
            }
        })
    }

    #[test]
    fn rotation_is_orthogonal() {
        let data = correlated_data();
        let opq = Opq::train(
            &data,
            &OpqConfig {
                pq: PqConfig {
                    m: 2,
                    kstar: 8,
                    iters: 6,
                    seed: 0,
                },
                outer_iters: 4,
            },
        );
        assert!(
            opq.orthogonality_error() < 1e-4,
            "RtR deviates from I by {}",
            opq.orthogonality_error()
        );
    }

    #[test]
    fn rotation_preserves_norms() {
        let data = correlated_data();
        let opq = Opq::train(
            &data,
            &OpqConfig {
                pq: PqConfig {
                    m: 2,
                    kstar: 8,
                    iters: 6,
                    seed: 0,
                },
                outer_iters: 3,
            },
        );
        for i in (0..data.len()).step_by(37) {
            let v = data.row(i);
            let rv = opq.rotate(v);
            assert!(
                (metric::norm(v) - metric::norm(&rv)).abs() < 1e-3 * (1.0 + metric::norm(v)),
                "norm changed under rotation"
            );
        }
    }

    #[test]
    fn opq_beats_plain_pq_on_correlated_data() {
        let data = correlated_data();
        let pq_cfg = PqConfig {
            m: 2,
            kstar: 8,
            iters: 8,
            seed: 0,
        };
        let plain = PqCodebook::train(&data, &pq_cfg);
        let opq = Opq::train(
            &data,
            &OpqConfig {
                pq: pq_cfg,
                outer_iters: 6,
            },
        );
        let pe = plain.reconstruction_error(&data);
        let oe = opq.reconstruction_error(&data);
        assert!(
            oe <= pe * 1.02,
            "OPQ ({oe}) should not lose to plain PQ ({pe}) on cross-correlated data"
        );
    }

    #[test]
    fn codebook_is_hardware_compatible() {
        let data = correlated_data();
        let opq = Opq::train(
            &data,
            &OpqConfig {
                pq: PqConfig {
                    m: 2,
                    kstar: 16,
                    iters: 4,
                    seed: 0,
                },
                outer_iters: 2,
            },
        );
        // Same shape contract as plain PQ: the ANNA path consumes it as-is.
        assert_eq!(opq.codebook().m(), 2);
        assert_eq!(opq.codebook().kstar(), 16);
        let codes = opq.encode(data.row(0));
        assert_eq!(codes.len(), 2);
        assert!(codes.iter().all(|&c| c < 16));
    }

    #[test]
    fn identity_start_means_first_iteration_matches_pq() {
        // With zero outer iterations the model is exactly plain PQ.
        let data = correlated_data();
        let pq_cfg = PqConfig {
            m: 2,
            kstar: 8,
            iters: 5,
            seed: 3,
        };
        let plain = PqCodebook::train(&data, &pq_cfg);
        let opq = Opq::train(
            &data,
            &OpqConfig {
                pq: pq_cfg,
                outer_iters: 0,
            },
        );
        assert!(opq.orthogonality_error() < 1e-12);
        assert_eq!(opq.encode(data.row(7)), plain.encode(data.row(7)));
    }
}
