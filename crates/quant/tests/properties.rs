//! Property-based tests for the training substrate (seeded `anna-testkit`
//! harness; failures report a replayable seed).

use anna_quant::additive::{AqCodebook, AqConfig};
use anna_quant::codes::{CodeWidth, PackedCodes};
use anna_quant::kmeans::{KMeans, KMeansConfig};
use anna_quant::linalg::SmallMat;
use anna_quant::opq::{Opq, OpqConfig};
use anna_quant::pq::{PqCodebook, PqConfig};
use anna_testkit::forall;
use anna_vector::{metric, VectorSet};

/// Packed codes always round-trip, at both widths and any m.
#[test]
fn packed_codes_roundtrip() {
    forall("packed codes roundtrip", 32, |rng| {
        let m = rng.usize(1..20);
        let nrows = rng.usize(1..30);
        let wide = rng.bool();
        let width = if wide { CodeWidth::U8 } else { CodeWidth::U4 };
        let mut packed = PackedCodes::new(m, width);
        let mut expect = Vec::new();
        for _ in 0..nrows {
            let len = rng.usize(1..20);
            let row = rng.vec_u8(len, 16);
            let mut codes: Vec<u8> = row.iter().cycle().take(m).cloned().collect();
            if wide {
                // Exercise the full byte range in U8 mode.
                for (i, c) in codes.iter_mut().enumerate() {
                    *c = c.wrapping_mul(13).wrapping_add(i as u8);
                }
            }
            packed.push(&codes);
            expect.push(codes);
        }
        assert_eq!(packed.len(), expect.len());
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(&packed.get(i), want);
        }
        // Total storage matches the paper's M*log2(k*)/8 formula per vector.
        assert_eq!(packed.bytes().len(), expect.len() * width.vector_bytes(m));
    });
}

/// k-means inertia never exceeds the inertia of a 1-centroid model
/// (the global mean is the best single centroid).
#[test]
fn kmeans_beats_single_centroid() {
    forall("kmeans beats single centroid", 32, |rng| {
        let seed = rng.u64(0..1000);
        let n = rng.usize(8..60);
        let data = VectorSet::from_fn(3, n, |r, c| {
            ((r as u64 * 2654435761 + c as u64 * 40503 + seed) % 97) as f32
        });
        let one = KMeans::train(
            &data,
            &KMeansConfig {
                k: 1,
                max_iters: 10,
                seed,
            },
        );
        let four = KMeans::train(
            &data,
            &KMeansConfig {
                k: 4,
                max_iters: 10,
                seed,
            },
        );
        assert!(four.inertia(&data) <= one.inertia(&data) + 1e-6);
    });
}

/// Every PQ encode produces in-range identifiers and decode returns the
/// nearest codeword per subspace.
#[test]
fn pq_encode_is_nearest_codeword() {
    forall("pq encode is nearest codeword", 32, |rng| {
        let seed = rng.u64(0..500);
        let data = VectorSet::from_fn(6, 80, |r, c| {
            ((r as u64 * 31 + c as u64 * 17 + seed * 7) % 23) as f32
        });
        let book = PqCodebook::train(
            &data,
            &PqConfig {
                m: 3,
                kstar: 4,
                iters: 6,
                seed,
            },
        );
        for i in 0..data.len() {
            let codes = book.encode(data.row(i));
            for (j, &code) in codes.iter().enumerate() {
                assert!((code as usize) < book.kstar());
                let x = data.subvector(i, 3, j);
                let chosen = metric::l2_squared(x, book.book(j).row(code as usize));
                for alt in 0..book.kstar() {
                    let d = metric::l2_squared(x, book.book(j).row(alt));
                    assert!(
                        chosen <= d + 1e-4,
                        "vector {i} subspace {j}: code {code} (d={chosen}) beaten by {alt} (d={d})"
                    );
                }
            }
        }
    });
}

/// The polar factor of any (well-conditioned) random matrix is
/// orthogonal to machine precision.
#[test]
fn polar_factor_is_always_orthogonal() {
    forall("polar factor is always orthogonal", 32, |rng| {
        let n = rng.usize(2..8);
        let mut m = SmallMat::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = (rng.unit_f64() - 0.5) * 10.0 + if i == j { 3.0 } else { 0.0 };
            }
        }
        if let Some(r) = m.polar_orthogonal() {
            let rtr = r.transpose().mul(&r);
            for i in 0..n {
                for j in 0..n {
                    let want = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (rtr[(i, j)] - want).abs() < 1e-7,
                        "RtR[{i}{j}] = {}",
                        rtr[(i, j)]
                    );
                }
            }
        }
    });
}

/// OPQ rotations preserve pairwise distances (isometry), for any data.
#[test]
fn opq_rotation_is_an_isometry() {
    forall("opq rotation is an isometry", 16, |rng| {
        let seed = rng.u64(0..100);
        let data = VectorSet::from_fn(4, 120, |r, c| {
            (((r as u64 * 37 + c as u64 * 11 + seed * 13) % 29) as f32) - 14.0
        });
        let opq = Opq::train(
            &data,
            &OpqConfig {
                pq: PqConfig {
                    m: 2,
                    kstar: 4,
                    iters: 3,
                    seed,
                },
                outer_iters: 2,
            },
        );
        for (i, j) in [(0usize, 1usize), (5, 50), (20, 100)] {
            let d_orig = metric::l2_squared(data.row(i), data.row(j));
            let d_rot = metric::l2_squared(&opq.rotate(data.row(i)), &opq.rotate(data.row(j)));
            assert!(
                (d_orig - d_rot).abs() <= 1e-2 * (1.0 + d_orig),
                "distance changed under rotation: {d_orig} vs {d_rot}"
            );
        }
    });
}

/// AQ encode/decode round-trips produce in-range identifiers and the
/// IP LUT score always matches the decoded dot product.
#[test]
fn aq_scores_match_decoded() {
    forall("aq scores match decoded", 16, |rng| {
        let seed = rng.u64(0..100);
        let data = VectorSet::from_fn(4, 100, |r, c| {
            (((r as u64 * 23 + c as u64 * 7 + seed) % 19) as f32) * 0.5
        });
        let book = AqCodebook::train(
            &data,
            &AqConfig {
                m: 2,
                kstar: 4,
                iters: 4,
                beam: 2,
                seed,
            },
        );
        let q: Vec<f32> = (0..4).map(|i| (i as f32) - 1.5).collect();
        let lut = book.build_lut(&q);
        for i in (0..data.len()).step_by(17) {
            let code = book.encode(data.row(i));
            assert!(code.codes.iter().all(|&c| (c as usize) < 4));
            let want = metric::dot(&q, &book.decode(&code.codes));
            let got = AqCodebook::score_ip(&lut, &code);
            assert!(
                (want - got).abs() <= 0.05 * (1.0 + want.abs()),
                "{want} vs {got}"
            );
        }
    });
}

/// Decoding an encoded vector never increases the distance versus any
/// single codeword combination (PQ optimality per subspace implies
/// global optimality of the concatenation).
#[test]
fn pq_reconstruction_is_subspace_optimal() {
    forall("pq reconstruction is subspace optimal", 32, |rng| {
        let seed = rng.u64(0..200);
        let data = VectorSet::from_fn(4, 60, |r, c| {
            (((r + 3) as u64 * 101 + c as u64 * 59 + seed * 11) % 41) as f32
        });
        let book = PqCodebook::train(
            &data,
            &PqConfig {
                m: 2,
                kstar: 4,
                iters: 6,
                seed,
            },
        );
        for i in (0..data.len()).step_by(7) {
            let v = data.row(i);
            let best = book.decode(&book.encode(v));
            let best_d = metric::l2_squared(v, &best);
            // Compare against every possible code combination.
            for c0 in 0..4u8 {
                for c1 in 0..4u8 {
                    let alt = book.decode(&[c0, c1]);
                    assert!(best_d <= metric::l2_squared(v, &alt) + 1e-4);
                }
            }
        }
    });
}
