//! The engine-agnostic query-execution layer.
//!
//! Every index family in the workspace answers queries through the same
//! five-step pipeline:
//!
//! ```text
//!  workload() ──▶ plan() ──▶ price() ──▶ execute() ──▶ verify()
//!  (query_scope)  EnginePlan  TrafficReport  EngineRun   predicted ==
//!                 (tagged IR)  (bytes, exact) (results +  measured,
//!                                             measured)   per component
//! ```
//!
//! [`SearchEngine`] is that pipeline as a trait. The cluster-major IVF-PQ
//! batch engine, its sharded/tiered variant (`anna-index`), and the
//! beam-search graph engine (`anna-graph`) all implement it, so the
//! serving layer composes and prices batches against `dyn SearchEngine`
//! without knowing which family it holds, and every engine inherits the
//! workspace's headline invariant: the [`TrafficReport`] predicted from
//! the plan equals the measured byte counters, exactly, component by
//! component.
//!
//! The trait is deliberately object-safe — `anna-serve`'s batcher holds a
//! `&dyn SearchEngine` — and the default `price`/`price_tiered`/`verify`
//! methods delegate to [`TrafficModel::price_engine`] and
//! [`anna_testkit::traffic_match`], so an engine only has to describe
//! scopes, build its tagged [`EnginePlan`], and execute it.

#![deny(missing_docs)]

use anna_plan::{
    ClusterCacheSim, EnginePlan, PlanParams, RerankPolicy, TierTraffic, TrafficModel, TrafficReport,
};
use anna_telemetry::Telemetry;
use anna_vector::{Metric, Neighbor, VectorSet};
use serde::{Deserialize, Serialize};

/// Per-query search request, engine-neutral: how many results and how
/// wide to search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySpec {
    /// Number of results to return.
    pub k: usize,
    /// Search width — the engine's recall knob: `nprobe` (clusters
    /// visited) for IVF engines, beam width `ef` for graph engines.
    pub scope: usize,
}

/// Batch-level planning options.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanOptions {
    /// Optional two-phase re-rank policy (engines that cannot re-rank
    /// panic if set — see each implementation's docs).
    pub rerank: Option<RerankPolicy>,
}

/// The byte counters an engine measures during execution, in the shared
/// [`TrafficReport`] vocabulary. Components an engine does not measure
/// directly (centroid streams, query lists, result stores) are
/// definitional — they follow from the plan — so only the six measured
/// counters are compared.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MeasuredTraffic {
    /// Encoded-vector bytes fetched.
    pub code_bytes: u64,
    /// Metadata bytes fetched (cluster descriptors, or graph adjacency
    /// lists — same field the model prices them into).
    pub cluster_meta_bytes: u64,
    /// Intermediate top-k spill bytes.
    pub topk_spill_bytes: u64,
    /// Intermediate top-k fill bytes.
    pub topk_fill_bytes: u64,
    /// Re-rank candidate-record bytes (two-phase runs only).
    pub rerank_candidate_bytes: u64,
    /// Re-rank vector-fetch bytes (two-phase runs only).
    pub rerank_vector_bytes: u64,
    /// Storage-tier split, for engines with a tiered backend (`None`
    /// for all-RAM engines).
    pub tier: Option<TierTraffic>,
}

impl MeasuredTraffic {
    /// `(component, predicted, measured)` triples for the six measured
    /// byte counters, ready for [`anna_testkit::traffic_match`].
    pub fn components(&self, predicted: &TrafficReport) -> Vec<(&'static str, u64, u64)> {
        vec![
            ("code_bytes", predicted.code_bytes, self.code_bytes),
            (
                "cluster_meta_bytes",
                predicted.cluster_meta_bytes,
                self.cluster_meta_bytes,
            ),
            (
                "topk_spill_bytes",
                predicted.topk_spill_bytes,
                self.topk_spill_bytes,
            ),
            (
                "topk_fill_bytes",
                predicted.topk_fill_bytes,
                self.topk_fill_bytes,
            ),
            (
                "rerank_candidate_bytes",
                predicted.rerank_candidate_bytes,
                self.rerank_candidate_bytes,
            ),
            (
                "rerank_vector_bytes",
                predicted.rerank_vector_bytes,
                self.rerank_vector_bytes,
            ),
        ]
    }

    /// `(component, predicted, measured)` triples for the storage-tier
    /// split (byte fields and cache-event counts), comparing `self.tier`
    /// against `predicted`. Empty when the engine measured no tier.
    pub fn tier_components(&self, predicted: &TierTraffic) -> Vec<(&'static str, u64, u64)> {
        match &self.tier {
            None => Vec::new(),
            Some(t) => vec![
                (
                    "tier.cache_code_bytes",
                    predicted.cache_code_bytes,
                    t.cache_code_bytes,
                ),
                (
                    "tier.disk_code_bytes",
                    predicted.disk_code_bytes,
                    t.disk_code_bytes,
                ),
                ("tier.cache_hits", predicted.cache_hits, t.cache_hits),
                ("tier.cache_misses", predicted.cache_misses, t.cache_misses),
                (
                    "tier.cache_admissions",
                    predicted.cache_admissions,
                    t.cache_admissions,
                ),
                (
                    "tier.cache_evictions",
                    predicted.cache_evictions,
                    t.cache_evictions,
                ),
            ],
        }
    }
}

/// The output of [`SearchEngine::execute`]: per-query results plus the
/// measured traffic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineRun {
    /// Per-query neighbors, best first, query order.
    pub results: Vec<Vec<Neighbor>>,
    /// Measured byte counters for the batch.
    pub measured: MeasuredTraffic,
}

/// An execution engine behind the workload → plan → price → execute →
/// verify pipeline.
///
/// The contract every implementation upholds:
///
/// * `plan()` is a pure function of `(self, queries, specs, scopes,
///   options)` — no hidden state advances — so pricing a plan and then
///   executing it sees the same schedule.
/// * `execute()` is deterministic: results and measured counters are
///   bit-identical at every `threads ≥ 1`.
/// * `verify()` holds: the priced report equals the measured counters
///   component for component, exactly.
pub trait SearchEngine {
    /// The engine family's stable name (telemetry and error contexts).
    fn name(&self) -> &'static str;

    /// Vector dimension `D` the engine indexes.
    fn dim(&self) -> usize;

    /// The similarity metric.
    fn metric(&self) -> Metric;

    /// The *workload* step: resolves one query's search scope into the
    /// engine's own id space — visited cluster ids for IVF engines
    /// (ordering matters: best cluster first), a deterministic traversal
    /// scope for graph engines.
    fn query_scope(&self, q: &[f32], spec: &QuerySpec) -> Vec<usize>;

    /// The *plan* step: builds the engine-tagged plan IR for a batch.
    /// `scopes[i]` must be `query_scope(queries.row(i), &specs[i])` —
    /// callers that already computed scopes (e.g. the serving batcher's
    /// visit cache) pass them through so planning never re-derives them.
    fn plan(
        &self,
        queries: &VectorSet,
        specs: &[QuerySpec],
        scopes: &[Vec<usize>],
        options: &PlanOptions,
    ) -> EnginePlan;

    /// The *price* step: the predicted traffic of executing `plan`.
    fn price(&self, plan: &EnginePlan) -> TrafficReport {
        TrafficModel::new(PlanParams::default()).price_engine(plan)
    }

    /// The *price* step with a storage-tier split: `cache` is the
    /// cluster-cache policy state the plan will run against (cluster-major
    /// plans advance it; pass a clone to predict without committing).
    fn price_tiered(
        &self,
        plan: &EnginePlan,
        cache: &mut ClusterCacheSim,
    ) -> (TrafficReport, TierTraffic) {
        TrafficModel::new(PlanParams::default()).price_engine_tiered(plan, cache)
    }

    /// The *execute* step: runs `plan` on up to `threads` workers.
    /// `queries` must be the batch the plan was built from.
    fn execute(
        &self,
        queries: &VectorSet,
        plan: &EnginePlan,
        threads: usize,
        tel: &Telemetry,
    ) -> EngineRun;

    /// The *verify* step: asserts predicted == measured component by
    /// component (tier split included when both sides carry one),
    /// returning the component-naming error from
    /// [`anna_testkit::traffic_match`] on mismatch.
    fn verify(
        &self,
        predicted: &TrafficReport,
        predicted_tier: Option<&TierTraffic>,
        measured: &MeasuredTraffic,
    ) -> Result<(), String> {
        let mut components = measured.components(predicted);
        if let Some(pt) = predicted_tier {
            components.extend(measured.tier_components(pt));
        }
        anna_testkit::traffic_match(self.name(), &components)
    }
}

/// Runs the full pipeline for one uniform batch: scope every query with
/// `spec`, plan, price, execute at `threads`, verify, and emit `engine.*`
/// telemetry. Returns the plan, the predicted report, and the run, or the
/// component-naming verification error.
///
/// Counters emitted (all under the `engine.` prefix):
/// `engine.batches`, `engine.queries`, `engine.predicted_bytes`,
/// `engine.code_bytes`, `engine.meta_bytes`, `engine.traffic_mismatches`,
/// and the span `engine.execute`.
///
/// # Errors
///
/// Returns `Err` with the component-naming message when predicted and
/// measured traffic disagree.
pub fn run_pipeline(
    engine: &dyn SearchEngine,
    queries: &VectorSet,
    spec: &QuerySpec,
    options: &PlanOptions,
    threads: usize,
    tel: &Telemetry,
) -> Result<(EnginePlan, TrafficReport, EngineRun), String> {
    let specs = vec![*spec; queries.len()];
    let scopes: Vec<Vec<usize>> = queries
        .iter()
        .map(|q| engine.query_scope(q, spec))
        .collect();
    let plan = engine.plan(queries, &specs, &scopes, options);
    let predicted = engine.price(&plan);
    let run = {
        let _span = tel.span("engine.execute");
        engine.execute(queries, &plan, threads, tel)
    };
    tel.counter_add("engine.batches", 1);
    tel.counter_add("engine.queries", queries.len() as u64);
    tel.counter_add("engine.predicted_bytes", predicted.total());
    tel.counter_add("engine.code_bytes", run.measured.code_bytes);
    tel.counter_add("engine.meta_bytes", run.measured.cluster_meta_bytes);
    match engine.verify(&predicted, None, &run.measured) {
        Ok(()) => Ok((plan, predicted, run)),
        Err(msg) => {
            tel.counter_add("engine.traffic_mismatches", 1);
            Err(msg)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_plan::{GraphPlan, GraphQueryPlan, GraphShape, GraphWorkload};

    /// A toy engine that "scans" nothing and reports exactly what its
    /// plan prices — enough to exercise the default methods and the
    /// pipeline helper without a real index.
    struct NullEngine {
        dim: usize,
        lie_about_code_bytes: bool,
    }

    impl SearchEngine for NullEngine {
        fn name(&self) -> &'static str {
            "null"
        }

        fn dim(&self) -> usize {
            self.dim
        }

        fn metric(&self) -> Metric {
            Metric::L2
        }

        fn query_scope(&self, _q: &[f32], spec: &QuerySpec) -> Vec<usize> {
            (0..spec.scope).collect()
        }

        fn plan(
            &self,
            queries: &VectorSet,
            specs: &[QuerySpec],
            scopes: &[Vec<usize>],
            options: &PlanOptions,
        ) -> EnginePlan {
            assert!(options.rerank.is_none());
            assert_eq!(specs.len(), queries.len());
            EnginePlan::Graph {
                workload: GraphWorkload {
                    shape: GraphShape {
                        d: self.dim,
                        m: 4,
                        kstar: 16,
                        metric: Metric::L2,
                        num_nodes: 10,
                        degree: 4,
                        k: specs.first().map(|s| s.k).unwrap_or(1),
                    },
                    beams: specs.iter().map(|s| s.scope).collect(),
                },
                plan: GraphPlan {
                    per_query: scopes
                        .iter()
                        .map(|s| GraphQueryPlan {
                            visited: s.len() as u64,
                            scanned: 2 * s.len() as u64,
                        })
                        .collect(),
                },
            }
        }

        fn execute(
            &self,
            queries: &VectorSet,
            plan: &EnginePlan,
            _threads: usize,
            _tel: &Telemetry,
        ) -> EngineRun {
            let predicted = self.price(plan);
            EngineRun {
                results: vec![Vec::new(); queries.len()],
                measured: MeasuredTraffic {
                    code_bytes: if self.lie_about_code_bytes {
                        predicted.code_bytes + 1
                    } else {
                        predicted.code_bytes
                    },
                    cluster_meta_bytes: predicted.cluster_meta_bytes,
                    ..MeasuredTraffic::default()
                },
            }
        }
    }

    #[test]
    fn pipeline_verifies_and_counts_under_engine_prefix() {
        let engine = NullEngine {
            dim: 8,
            lie_about_code_bytes: false,
        };
        let queries = VectorSet::from_fn(8, 3, |r, c| (r + c) as f32);
        let tel = Telemetry::enabled();
        let spec = QuerySpec { k: 2, scope: 5 };
        let (plan, predicted, run) =
            run_pipeline(&engine, &queries, &spec, &PlanOptions::default(), 1, &tel)
                .expect("null engine matches its own prediction");
        assert_eq!(plan.engine(), "graph");
        assert_eq!(run.results.len(), 3);
        assert!(predicted.total() > 0);
        let snapshot = tel.snapshot_json().expect("enabled telemetry");
        assert!(snapshot.contains("engine.batches"), "{snapshot}");
        assert!(snapshot.contains("engine.predicted_bytes"), "{snapshot}");
    }

    #[test]
    fn pipeline_reports_mismatch_by_component() {
        let engine = NullEngine {
            dim: 8,
            lie_about_code_bytes: true,
        };
        let queries = VectorSet::from_fn(8, 2, |r, c| (r * 3 + c) as f32);
        let tel = Telemetry::enabled();
        let err = run_pipeline(
            &engine,
            &queries,
            &QuerySpec { k: 1, scope: 3 },
            &PlanOptions::default(),
            1,
            &tel,
        )
        .expect_err("lying engine must fail verification");
        assert!(err.contains("null"), "{err}");
        assert!(err.contains("code_bytes"), "{err}");
        let snapshot = tel.snapshot_json().expect("enabled telemetry");
        assert!(snapshot.contains("engine.traffic_mismatches"), "{snapshot}");
    }

    #[test]
    fn verify_includes_tier_components_when_both_sides_have_them() {
        let engine = NullEngine {
            dim: 4,
            lie_about_code_bytes: false,
        };
        let predicted = TrafficReport::default();
        let predicted_tier = TierTraffic {
            cache_code_bytes: 100,
            ..TierTraffic::default()
        };
        let measured = MeasuredTraffic {
            tier: Some(TierTraffic::default()),
            ..MeasuredTraffic::default()
        };
        let err = engine
            .verify(&predicted, Some(&predicted_tier), &measured)
            .expect_err("tier split disagrees");
        assert!(err.contains("tier.cache_code_bytes"), "{err}");
        // Without a measured tier the predicted tier is not compared.
        engine
            .verify(
                &predicted,
                Some(&predicted_tier),
                &MeasuredTraffic::default(),
            )
            .expect("no measured tier to compare");
    }
}
