//! Registry of the paper's evaluation datasets (Section V-A) and scaled
//! stand-ins.

use crate::synth::{Character, DatasetSpec};
use anna_vector::Metric;
use serde::{Deserialize, Serialize};

/// The six datasets of the paper's evaluation (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// SIFT1M: N=1M, D=128, L2.
    Sift1M,
    /// Deep1M: N=1M, D=96, L2.
    Deep1M,
    /// GloVe: N=1M, D=100, inner product.
    Glove1M,
    /// SIFT1B: N=1B, D=128, L2.
    Sift1B,
    /// Deep1B: N=1B, D=96, L2.
    Deep1B,
    /// TTI1B: N=1B, D=128, inner product.
    Tti1B,
}

impl PaperDataset {
    /// All six datasets in the paper's presentation order.
    pub const ALL: [PaperDataset; 6] = [
        PaperDataset::Sift1M,
        PaperDataset::Deep1M,
        PaperDataset::Glove1M,
        PaperDataset::Sift1B,
        PaperDataset::Deep1B,
        PaperDataset::Tti1B,
    ];

    /// The dataset's display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PaperDataset::Sift1M => "SIFT1M",
            PaperDataset::Deep1M => "Deep1M",
            PaperDataset::Glove1M => "GloVe",
            PaperDataset::Sift1B => "SIFT1B",
            PaperDataset::Deep1B => "Deep1B",
            PaperDataset::Tti1B => "TTI1B",
        }
    }

    /// Vector dimension `D`.
    pub fn dim(self) -> usize {
        match self {
            PaperDataset::Sift1M | PaperDataset::Sift1B | PaperDataset::Tti1B => 128,
            PaperDataset::Deep1M | PaperDataset::Deep1B => 96,
            PaperDataset::Glove1M => 100,
        }
    }

    /// Database size `N` in the paper.
    pub fn full_n(self) -> u64 {
        if self.is_billion_scale() {
            1_000_000_000
        } else {
            1_000_000
        }
    }

    /// Similarity metric.
    pub fn metric(self) -> Metric {
        self.character().metric()
    }

    /// The synthetic family standing in for this dataset.
    pub fn character(self) -> Character {
        match self {
            PaperDataset::Sift1M | PaperDataset::Sift1B => Character::SiftLike,
            PaperDataset::Deep1M | PaperDataset::Deep1B => Character::DeepLike,
            PaperDataset::Glove1M => Character::GloveLike,
            PaperDataset::Tti1B => Character::TtiLike,
        }
    }

    /// `true` for the billion-scale rows of Figure 8.
    pub fn is_billion_scale(self) -> bool {
        matches!(
            self,
            PaperDataset::Sift1B | PaperDataset::Deep1B | PaperDataset::Tti1B
        )
    }

    /// The paper's coarse cluster count: `|C| = 10000` for billion-scale,
    /// `|C| = 250` for million-scale (Section V-A).
    pub fn paper_num_clusters(self) -> usize {
        if self.is_billion_scale() {
            10_000
        } else {
            250
        }
    }

    /// Average cluster population `N/|C|` at paper scale (100 000 for
    /// billion-scale, 4 000 for million-scale).
    pub fn paper_avg_cluster_size(self) -> u64 {
        self.full_n() / self.paper_num_clusters() as u64
    }

    /// The PQ sub-vector count `M` for a target compression ratio and
    /// `k*`, per Figure 8's caption: at 4:1, `k*=256` uses `M=D/2` and
    /// `k*=16` uses `M=D`; at 8:1 both halve; 16:1 (mentioned in the
    /// Section V-B text, where `k*=16` "fail\[s\] to achieve 0.5 recall" on
    /// Deep1B) halves again.
    ///
    /// # Panics
    ///
    /// Panics if the ratio is not 4, 8 or 16, `k*` is not 16/256, or the
    /// implied `M` does not divide `D` evenly (e.g. GloVe's D=100 at
    /// 16:1 with `k*=256`).
    pub fn m_for(self, compression: u32, kstar: usize) -> usize {
        let d = self.dim();
        let m = match (compression, kstar) {
            (4, 256) => d / 2,
            (4, 16) => d,
            (8, 256) => d / 4,
            (8, 16) => d / 2,
            (16, 256) => d / 8,
            (16, 16) => d / 4,
            _ => panic!("unsupported compression {compression}:1 with k*={kstar}"),
        };
        assert!(m > 0 && d.is_multiple_of(m), "M={m} does not divide D={d}");
        m
    }

    /// A scaled generation spec with `scaled_n` database vectors.
    ///
    /// The number of latent blobs scales with `N` so cluster structure
    /// density is preserved; pair it with [`PaperDataset::scaled_num_clusters`]
    /// to keep the paper's `N/|C|` ratio.
    pub fn spec(self, scaled_n: usize, num_queries: usize, seed: u64) -> DatasetSpec {
        // GloVe's D=100 does not divide by the M the 8:1 k*=256 config
        // needs (25 does divide 100, so all paper configs are fine).
        DatasetSpec {
            name: self.name().to_string(),
            dim: self.dim(),
            n: scaled_n,
            num_queries,
            character: self.character(),
            num_blobs: (scaled_n / 500).clamp(8, 256),
            seed: seed ^ (self as u64) << 32,
        }
    }

    /// `|C|` for a scaled run, preserving the paper's average cluster
    /// population (`N/|C|`): `max(4, scaled_n / paper_avg_cluster_size)`.
    ///
    /// Because recall-vs-`W` depends on the *fraction* of clusters probed
    /// and on cluster granularity, scaled sweeps should express `W` as a
    /// fraction of this value.
    pub fn scaled_num_clusters(self, scaled_n: usize) -> usize {
        ((scaled_n as u64 / self.paper_avg_cluster_size().max(1)) as usize).max(4)
    }
}

impl std::fmt::Display for PaperDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shapes_are_reproduced() {
        assert_eq!(PaperDataset::Sift1B.dim(), 128);
        assert_eq!(PaperDataset::Deep1B.dim(), 96);
        assert_eq!(PaperDataset::Glove1M.dim(), 100);
        assert_eq!(PaperDataset::Sift1B.full_n(), 1_000_000_000);
        assert_eq!(PaperDataset::Sift1M.full_n(), 1_000_000);
        assert_eq!(PaperDataset::Sift1B.paper_num_clusters(), 10_000);
        assert_eq!(PaperDataset::Sift1M.paper_num_clusters(), 250);
    }

    #[test]
    fn metrics_match_section_5a() {
        assert_eq!(PaperDataset::Sift1B.metric(), Metric::L2);
        assert_eq!(PaperDataset::Deep1B.metric(), Metric::L2);
        assert_eq!(PaperDataset::Glove1M.metric(), Metric::InnerProduct);
        assert_eq!(PaperDataset::Tti1B.metric(), Metric::InnerProduct);
    }

    #[test]
    fn compression_m_follows_figure8_caption() {
        let d = PaperDataset::Sift1B;
        assert_eq!(d.m_for(4, 256), 64); // M = D/2
        assert_eq!(d.m_for(4, 16), 128); // M = D
        assert_eq!(d.m_for(8, 256), 32); // M = D/4
        assert_eq!(d.m_for(8, 16), 64); // M = D/2
                                        // Bytes check: 4:1 means encoded size = 2*D/4 bytes = D/2.
        assert_eq!(d.m_for(4, 256) * 8 / 8, 64); // 64 B vs 256 B raw
    }

    #[test]
    fn all_m_values_divide_d_for_every_config() {
        for ds in PaperDataset::ALL {
            for comp in [4u32, 8] {
                for kstar in [16usize, 256] {
                    let m = ds.m_for(comp, kstar);
                    assert_eq!(ds.dim() % m, 0, "{ds}: comp {comp} k* {kstar}");
                }
            }
        }
    }

    #[test]
    fn scaled_clusters_preserve_population_ratio() {
        let ds = PaperDataset::Sift1B; // 100k per cluster at paper scale
        assert_eq!(ds.scaled_num_clusters(1_000_000), 10);
        let m = PaperDataset::Sift1M; // 4k per cluster
        assert_eq!(m.scaled_num_clusters(100_000), 25);
    }

    #[test]
    fn spec_is_deterministic_and_named() {
        let s = PaperDataset::Deep1M.spec(10_000, 16, 3);
        assert_eq!(s.name, "Deep1M");
        assert_eq!(s.dim, 96);
        assert_eq!(s.n, 10_000);
    }
}
