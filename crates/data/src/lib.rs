//! Dataset substrate for the ANNA reproduction.
//!
//! The paper evaluates on SIFT1M/1B, Deep1M/1B, GloVe and TTI1B
//! (Section V-A). Those corpora cannot be shipped here, so this crate
//! generates synthetic stand-ins that preserve the characteristics the
//! search pipeline is sensitive to (see `DESIGN.md`, substitution 1):
//!
//! * [`synth`] — clustered mixture generators with per-family character:
//!   SIFT-like (non-negative quantized features, L2), Deep-like
//!   (L2-normalized dense embeddings, L2), GloVe-like (heavy-tailed word
//!   embeddings, inner product) and TTI-like (queries drawn from a shifted
//!   distribution — the out-of-distribution text-to-image regime, inner
//!   product).
//! * [`workload`] — the registry of the paper's six datasets with their
//!   true `N`, `D`, metric and `|C|`, plus scaled variants whose
//!   `N/|C|` ratio matches the paper so recall-vs-`W` dynamics carry over.
//! * [`cluster_model`] — cluster-size distributions at *full* paper scale
//!   (balanced and skewed), which is all the cycle-level simulator needs to
//!   time billion-scale runs without materializing a billion vectors.
//! * [`recall`] — ground truth via exhaustive search and the paper's
//!   quality metric, recall `X@Y` ("the portion of retrieved top X items
//!   among submitted Y candidates").
//! * [`fvecs`] — readers/writers for the TexMex `.fvecs`/`.ivecs`/`.bvecs`
//!   formats, so the pipeline can also consume the paper's real datasets
//!   when they are available.

#![deny(missing_docs)]

pub mod cluster_model;
pub mod fvecs;
pub mod recall;
pub mod synth;
pub mod workload;

pub use cluster_model::ClusterSizeModel;
pub use recall::{ground_truth, recall_x_at_y, GroundTruth};
pub use synth::{Character, Dataset, DatasetSpec};
pub use workload::PaperDataset;
