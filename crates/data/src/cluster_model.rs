//! Cluster-size distributions at full paper scale.
//!
//! ANNA's timing depends on the workload only through the sizes of the
//! clusters each query visits (`|C_i|` in the Section IV-B cycle formulas),
//! `W`, `M`, `k*` and `D` — not through the vector values themselves. These
//! models let the simulator time billion-scale runs (N = 10⁹,
//! |C| = 10 000) without materializing a billion vectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A synthetic distribution of database vectors over coarse clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSizeModel {
    sizes: Vec<usize>,
}

impl ClusterSizeModel {
    /// All clusters the same size (`n / c`, remainder spread over the first
    /// clusters). The best case for ANNA's double buffering.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`.
    pub fn balanced(n: u64, c: usize) -> Self {
        assert!(c > 0, "need at least one cluster");
        let base = (n / c as u64) as usize;
        let rem = (n % c as u64) as usize;
        let sizes = (0..c).map(|i| base + usize::from(i < rem)).collect();
        Self { sizes }
    }

    /// Skewed sizes following a power law with exponent `alpha` (k-means on
    /// real data produces moderately imbalanced clusters; `alpha ≈ 0.5–1`
    /// is a reasonable stand-in). Sizes are scaled to sum to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0` or `alpha < 0`.
    pub fn skewed(n: u64, c: usize, alpha: f64, seed: u64) -> Self {
        assert!(c > 0, "need at least one cluster");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        // Power-law weights with random shuffle so "hot" clusters are not
        // always the low ids.
        let mut weights: Vec<f64> = (1..=c).map(|r| (r as f64).powf(-alpha)).collect();
        for i in (1..weights.len()).rev() {
            let j = rng.gen_range(0..=i);
            weights.swap(i, j);
        }
        let total: f64 = weights.iter().sum();
        let mut sizes: Vec<usize> = weights
            .iter()
            .map(|w| ((w / total) * n as f64).floor() as usize)
            .collect();
        // Distribute the rounding remainder deterministically.
        let mut assigned: u64 = sizes.iter().map(|&s| s as u64).sum();
        let mut i = 0;
        while assigned < n {
            sizes[i % c] += 1;
            assigned += 1;
            i += 1;
        }
        Self { sizes }
    }

    /// Wraps measured sizes (e.g. from a real [`anna_vector::VectorSet`]
    /// index build) as a model.
    pub fn from_sizes(sizes: Vec<usize>) -> Self {
        Self { sizes }
    }

    /// The per-cluster sizes `|C_i|`.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of clusters `|C|`.
    pub fn num_clusters(&self) -> usize {
        self.sizes.len()
    }

    /// Total vectors `N`.
    pub fn total(&self) -> u64 {
        self.sizes.iter().map(|&s| s as u64).sum()
    }

    /// Mean cluster size.
    pub fn mean(&self) -> f64 {
        self.total() as f64 / self.num_clusters() as f64
    }

    /// Draws the cluster lists `W` queries would visit: each query visits
    /// `w` distinct clusters, biased toward large clusters (a query is more
    /// likely to fall near a populous region), which matches how real
    /// cluster filtering behaves.
    ///
    /// # Panics
    ///
    /// Panics if `w > self.num_clusters()`.
    pub fn sample_query_visits(&self, num_queries: usize, w: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(w <= self.num_clusters(), "w exceeds cluster count");
        let mut rng = StdRng::seed_from_u64(seed);
        let total = self.total();
        // Prefix sums for O(log |C|) size-biased draws — paper-scale
        // workloads sample B·W ≈ 10^5 picks over |C| = 10^4 clusters.
        let mut prefix: Vec<u64> = Vec::with_capacity(self.sizes.len());
        let mut acc = 0u64;
        for &s in &self.sizes {
            acc += s as u64;
            prefix.push(acc);
        }
        (0..num_queries)
            .map(|_| {
                let mut chosen = Vec::with_capacity(w);
                let mut taken = vec![false; self.num_clusters()];
                let mut misses = 0usize;
                while chosen.len() < w {
                    let t = rng.gen_range(0..total.max(1));
                    let pick = prefix.partition_point(|&p| p <= t);
                    if !taken[pick] {
                        taken[pick] = true;
                        chosen.push(pick);
                        misses = 0;
                    } else {
                        misses += 1;
                        if misses > 32 {
                            // Extreme skew: fall back to the next free
                            // cluster to guarantee termination.
                            let alt = (pick + 1..self.num_clusters())
                                .chain(0..pick)
                                .find(|&i| !taken[i])
                                .expect("w <= |C| guarantees a free cluster");
                            taken[alt] = true;
                            chosen.push(alt);
                            misses = 0;
                        }
                    }
                }
                chosen
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_sums_exactly() {
        let m = ClusterSizeModel::balanced(1_000_000_000, 10_000);
        assert_eq!(m.total(), 1_000_000_000);
        assert_eq!(m.num_clusters(), 10_000);
        assert_eq!(m.sizes()[0], 100_000);
        assert_eq!(m.sizes()[9_999], 100_000);
    }

    #[test]
    fn balanced_spreads_remainder() {
        let m = ClusterSizeModel::balanced(10, 3);
        assert_eq!(m.sizes(), &[4, 3, 3]);
        assert_eq!(m.total(), 10);
    }

    #[test]
    fn skewed_sums_exactly_and_is_skewed() {
        let m = ClusterSizeModel::skewed(1_000_000, 100, 1.0, 42);
        assert_eq!(m.total(), 1_000_000);
        let max = *m.sizes().iter().max().unwrap();
        let min = *m.sizes().iter().min().unwrap();
        assert!(max > 3 * min.max(1), "not skewed: {min}..{max}");
    }

    #[test]
    fn skewed_alpha_zero_is_nearly_balanced() {
        let m = ClusterSizeModel::skewed(100_000, 100, 0.0, 1);
        let max = *m.sizes().iter().max().unwrap();
        let min = *m.sizes().iter().min().unwrap();
        assert!(max - min <= 1, "alpha=0 should be uniform: {min}..{max}");
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn skewed_rejects_zero_clusters() {
        ClusterSizeModel::skewed(1000, 0, 0.5, 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn skewed_rejects_negative_alpha() {
        ClusterSizeModel::skewed(1000, 10, -0.1, 1);
    }

    #[test]
    fn skewed_handles_fewer_vectors_than_clusters() {
        // total < num_clusters: sizes must still sum exactly (some
        // clusters end up empty), at every skew.
        for alpha in [0.0, 0.5, 1.0] {
            let m = ClusterSizeModel::skewed(7, 20, alpha, 3);
            assert_eq!(m.num_clusters(), 20);
            assert_eq!(m.total(), 7, "alpha={alpha}");
            assert!(m.sizes().contains(&0));
        }
        // The degenerate floor: zero vectors over many clusters.
        let empty = ClusterSizeModel::skewed(0, 5, 1.0, 3);
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.sizes(), &[0; 5]);
    }

    #[test]
    fn skewed_alpha_one_sums_exactly_and_orders_by_weight() {
        // alpha = 1 is the paper-ish heavy tail; the invariants that feed
        // real execution are exact totals and a genuinely skewed shape.
        let m = ClusterSizeModel::skewed(50_000, 64, 1.0, 9);
        assert_eq!(m.total(), 50_000);
        let max = *m.sizes().iter().max().unwrap();
        assert!(
            max as f64 > 2.0 * m.mean(),
            "alpha=1 should concentrate mass: max={max} mean={}",
            m.mean()
        );
    }

    #[test]
    fn query_visits_have_w_distinct_clusters() {
        let m = ClusterSizeModel::skewed(100_000, 50, 0.8, 7);
        let visits = m.sample_query_visits(20, 8, 3);
        assert_eq!(visits.len(), 20);
        for v in &visits {
            assert_eq!(v.len(), 8);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 8, "duplicate clusters in visit list");
        }
    }

    #[test]
    fn visits_bias_toward_large_clusters() {
        let mut sizes = vec![10usize; 100];
        sizes[0] = 100_000; // one giant cluster
        let m = ClusterSizeModel::from_sizes(sizes);
        let visits = m.sample_query_visits(200, 1, 9);
        let hits = visits.iter().filter(|v| v[0] == 0).count();
        assert!(hits > 150, "giant cluster only picked {hits}/200 times");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = ClusterSizeModel::skewed(10_000, 20, 0.5, 11);
        assert_eq!(
            m.sample_query_visits(5, 3, 2),
            m.sample_query_visits(5, 3, 2)
        );
    }
}
