//! Synthetic dataset generation.
//!
//! All generators draw from a mixture of Gaussian blobs (which is what
//! gives IVF clustering something meaningful to find) and then post-process
//! rows to match the character of the dataset family they stand in for.

use anna_vector::{metric, Metric, VectorSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The statistical character of a generated dataset family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Character {
    /// SIFT-like: non-negative integer-quantized local features, L2 metric.
    SiftLike,
    /// Deep-like: L2-normalized dense CNN descriptors, L2 metric.
    DeepLike,
    /// GloVe-like: word embeddings with heavy-tailed norms, inner product.
    GloveLike,
    /// TTI-like (text-to-image): database and queries come from *different*
    /// distributions (queries are shifted/rotated), inner product. This is
    /// the out-of-distribution regime in which `k* = 16` struggles to reach
    /// high recall in the paper's Figure 8.
    TtiLike,
}

impl Character {
    /// The similarity metric this family is searched with in the paper.
    pub fn metric(self) -> Metric {
        match self {
            Character::SiftLike | Character::DeepLike => Metric::L2,
            Character::GloveLike | Character::TtiLike => Metric::InnerProduct,
        }
    }
}

/// A dataset generation request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Human-readable name (carried into reports).
    pub name: String,
    /// Vector dimension `D`.
    pub dim: usize,
    /// Number of database vectors `N`.
    pub n: usize,
    /// Number of query vectors.
    pub num_queries: usize,
    /// Statistical family.
    pub character: Character,
    /// Number of latent mixture blobs (structure for IVF to exploit).
    pub num_blobs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// A small default spec for tests and examples.
    pub fn small(character: Character) -> Self {
        Self {
            name: format!("{character:?}-small"),
            dim: 16,
            n: 2000,
            num_queries: 32,
            character,
            num_blobs: 20,
            seed: 7,
        }
    }
}

/// A generated dataset: database plus held-out queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Name carried from the spec.
    pub name: String,
    /// The metric this dataset is searched with.
    pub metric: Metric,
    /// Database vectors.
    pub db: VectorSet,
    /// Query vectors.
    pub queries: VectorSet,
}

/// Samples a standard normal via Box–Muller (the `rand` crate alone ships
/// no Gaussian distribution; `rand_distr` is intentionally not a
/// dependency).
fn gaussian(rng: &mut StdRng) -> f32 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > 1e-12 {
            return ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32;
        }
    }
}

fn sample_blob_centers(dim: usize, blobs: usize, spread: f32, rng: &mut StdRng) -> VectorSet {
    VectorSet::from_fn(dim, blobs, |_, _| gaussian(rng) * spread)
}

fn sample_mixture(centers: &VectorSet, n: usize, sigma: f32, rng: &mut StdRng) -> VectorSet {
    let dim = centers.dim();
    let mut out = VectorSet::zeros(dim, n);
    for i in 0..n {
        let b = rng.gen_range(0..centers.len());
        let c = centers.row(b).to_vec();
        let row = out.row_mut(i);
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = c[j] + gaussian(rng) * sigma;
        }
    }
    out
}

/// Generates a dataset according to `spec`.
///
/// Deterministic given the spec (including the seed).
///
/// # Panics
///
/// Panics if `n`, `num_queries`, `dim` or `num_blobs` is zero.
///
/// # Example
///
/// ```
/// use anna_data::synth::{self, Character, DatasetSpec};
///
/// let ds = synth::generate(&DatasetSpec::small(Character::SiftLike));
/// assert_eq!(ds.db.len(), 2000);
/// assert!(ds.db.as_slice().iter().all(|&v| v >= 0.0)); // SIFT-like is non-negative
/// ```
pub fn generate(spec: &DatasetSpec) -> Dataset {
    assert!(
        spec.n > 0 && spec.num_queries > 0,
        "empty dataset requested"
    );
    assert!(spec.dim > 0 && spec.num_blobs > 0, "degenerate spec");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let centers = sample_blob_centers(spec.dim, spec.num_blobs, 4.0, &mut rng);
    let mut db = sample_mixture(&centers, spec.n, 1.0, &mut rng);

    // Queries: in-distribution for most families; TTI-like shifts them.
    let mut queries = match spec.character {
        Character::TtiLike => {
            // Different modality: blend each blob center with a random
            // offset and widen the noise — queries live near, but not on,
            // the database manifold.
            let offset: Vec<f32> = (0..spec.dim).map(|_| gaussian(&mut rng) * 2.0).collect();
            let mut q = sample_mixture(&centers, spec.num_queries, 1.8, &mut rng);
            for i in 0..q.len() {
                for (j, slot) in q.row_mut(i).iter_mut().enumerate() {
                    *slot += offset[j];
                }
            }
            q
        }
        _ => sample_mixture(&centers, spec.num_queries, 1.0, &mut rng),
    };

    match spec.character {
        Character::SiftLike => {
            quantize_nonnegative(&mut db);
            quantize_nonnegative(&mut queries);
        }
        Character::DeepLike => {
            normalize_rows(&mut db);
            normalize_rows(&mut queries);
        }
        Character::GloveLike => {
            heavy_tail_scale(&mut db, spec.seed ^ 0x9E37_79B9);
            // Queries keep unit-ish scale: MIPS then prefers large-norm
            // database rows, as with real word frequencies.
            normalize_rows(&mut queries);
        }
        Character::TtiLike => {
            normalize_rows(&mut db);
            normalize_rows(&mut queries);
        }
    }

    Dataset {
        name: spec.name.clone(),
        metric: spec.character.metric(),
        db,
        queries,
    }
}

/// Shifts rows to be non-negative and rounds to integers (SIFT gradient
/// histograms are small non-negative integers).
fn quantize_nonnegative(set: &mut VectorSet) {
    let min = set.as_slice().iter().cloned().fold(f32::INFINITY, f32::min);
    let shift = if min < 0.0 { -min } else { 0.0 };
    for v in set.as_mut_slice() {
        *v = ((*v + shift) * 8.0).round().max(0.0);
    }
}

/// L2-normalizes every row (zero rows are left untouched).
fn normalize_rows(set: &mut VectorSet) {
    for i in 0..set.len() {
        let n = metric::norm(set.row(i));
        if n > 1e-12 {
            for v in set.row_mut(i) {
                *v /= n;
            }
        }
    }
}

/// Scales each row by `exp(g)` for a per-row Gaussian `g`, giving the
/// log-normal norm distribution typical of word embeddings.
fn heavy_tail_scale(set: &mut VectorSet, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..set.len() {
        let s = (gaussian(&mut rng) * 0.4).exp();
        for v in set.row_mut(i) {
            *v *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let spec = DatasetSpec::small(Character::DeepLike);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.db, b.db);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = DatasetSpec::small(Character::DeepLike);
        let a = generate(&spec);
        spec.seed += 1;
        let b = generate(&spec);
        assert_ne!(a.db, b.db);
    }

    #[test]
    fn sift_like_is_nonnegative_integers() {
        let ds = generate(&DatasetSpec::small(Character::SiftLike));
        for &v in ds.db.as_slice() {
            assert!(v >= 0.0);
            assert_eq!(v, v.round());
        }
        assert_eq!(ds.metric, Metric::L2);
    }

    #[test]
    fn deep_like_rows_are_unit_norm() {
        let ds = generate(&DatasetSpec::small(Character::DeepLike));
        for row in ds.db.iter() {
            assert!((metric::norm(row) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn glove_like_norms_are_heavy_tailed() {
        let ds = generate(&DatasetSpec::small(Character::GloveLike));
        let norms: Vec<f32> = ds.db.iter().map(metric::norm).collect();
        let max = norms.iter().cloned().fold(0.0f32, f32::max);
        let min = norms.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(max / min > 2.0, "norm spread too small: {min}..{max}");
        assert_eq!(ds.metric, Metric::InnerProduct);
    }

    #[test]
    fn tti_like_queries_are_out_of_distribution() {
        let ds = generate(&DatasetSpec::small(Character::TtiLike));
        // Mean query should sit away from the mean database vector.
        let dim = ds.db.dim();
        let mut db_mean = vec![0.0f32; dim];
        for r in ds.db.iter() {
            for (s, &v) in db_mean.iter_mut().zip(r) {
                *s += v / ds.db.len() as f32;
            }
        }
        let mut q_mean = vec![0.0f32; dim];
        for r in ds.queries.iter() {
            for (s, &v) in q_mean.iter_mut().zip(r) {
                *s += v / ds.queries.len() as f32;
            }
        }
        let shift = metric::l2_squared(&db_mean, &q_mean).sqrt();
        assert!(
            shift > 0.05,
            "query distribution not shifted (shift {shift})"
        );
    }

    #[test]
    fn blob_structure_exists() {
        // Points from the same generator should have much smaller average
        // distance to their nearest 1% than to a random pair.
        let ds = generate(&DatasetSpec::small(Character::DeepLike));
        let a = ds.db.row(0);
        let mut dists: Vec<f32> = (1..500)
            .map(|i| metric::l2_squared(a, ds.db.row(i)))
            .collect();
        dists.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let near = dists[..5].iter().sum::<f32>() / 5.0;
        let far = dists[dists.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(
            near * 3.0 < far,
            "no cluster structure: near {near}, far {far}"
        );
    }
}
