//! Ground truth and the paper's quality metric, recall `X@Y`.
//!
//! "model recall X@Y (i.e., the portion of retrieved top X items among
//! submitted Y candidates)" — Section V-A. Figure 8's x-axis is recall
//! 100@1000: the fraction of the true top-100 neighbors found within the
//! 1000 candidates the ANNS algorithm returns.

use anna_vector::{exact, Metric, Neighbor, VectorSet};
use serde::{Deserialize, Serialize};

/// Exact top-X neighbor lists for a query batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// `x` of recall `X@Y` — how many true neighbors are stored per query.
    pub x: usize,
    /// Per-query true top-`x` ids, best first.
    pub ids: Vec<Vec<u64>>,
}

/// Computes exact top-`x` ground truth by exhaustive search.
///
/// Ties are pinned by the shared score-then-id total order
/// ([`anna_vector::sort_neighbors`]): under duplicated or equidistant
/// vectors the lower id is always the true neighbor, the same rule every
/// retrieval pipeline's truncation applies — so recall numbers are stable
/// across kernel families and candidate orderings instead of depending on
/// which of the tied ids happened to survive on each side.
///
/// # Panics
///
/// Panics if dimensions mismatch or `x == 0`.
pub fn ground_truth(queries: &VectorSet, db: &VectorSet, metric: Metric, x: usize) -> GroundTruth {
    let hits = exact::search(queries, db, metric, x);
    GroundTruth {
        x,
        ids: hits
            .into_iter()
            .map(|h| h.into_iter().map(|n| n.id).collect())
            .collect(),
    }
}

/// Recall `X@Y` for one query: the fraction of `truth` (top-X) present in
/// the first `y` entries of `retrieved`.
///
/// # Panics
///
/// Panics if `truth` is empty.
pub fn recall_one(truth: &[u64], retrieved: &[Neighbor], y: usize) -> f64 {
    assert!(!truth.is_empty(), "ground truth must be non-empty");
    let candidates: std::collections::HashSet<u64> =
        retrieved.iter().take(y).map(|n| n.id).collect();
    let found = truth.iter().filter(|id| candidates.contains(id)).count();
    found as f64 / truth.len() as f64
}

/// Mean recall `X@Y` over a query batch.
///
/// `results[q]` is the candidate list for query `q` (best first, length
/// usually `Y`); `gt.ids[q]` the true top-X.
///
/// # Panics
///
/// Panics if the batch sizes differ.
pub fn recall_x_at_y(gt: &GroundTruth, results: &[Vec<Neighbor>], y: usize) -> f64 {
    assert_eq!(gt.ids.len(), results.len(), "batch size mismatch");
    if gt.ids.is_empty() {
        return 0.0;
    }
    gt.ids
        .iter()
        .zip(results)
        .map(|(truth, res)| recall_one(truth, res, y))
        .sum::<f64>()
        / gt.ids.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_vector::Neighbor;

    fn neighbors(ids: &[u64]) -> Vec<Neighbor> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| Neighbor::new(id, -(i as f32)))
            .collect()
    }

    #[test]
    fn perfect_retrieval_scores_one() {
        let truth = vec![1u64, 2, 3];
        let res = neighbors(&[3, 2, 1, 9, 8]);
        assert_eq!(recall_one(&truth, &res, 5), 1.0);
    }

    #[test]
    fn partial_retrieval_scores_fraction() {
        let truth = vec![1u64, 2, 3, 4];
        let res = neighbors(&[1, 9, 3, 8]);
        assert_eq!(recall_one(&truth, &res, 4), 0.5);
    }

    #[test]
    fn y_truncates_candidates() {
        let truth = vec![5u64];
        let res = neighbors(&[9, 8, 5]);
        assert_eq!(recall_one(&truth, &res, 2), 0.0);
        assert_eq!(recall_one(&truth, &res, 3), 1.0);
    }

    #[test]
    fn batch_recall_averages() {
        let gt = GroundTruth {
            x: 1,
            ids: vec![vec![1], vec![2]],
        };
        let results = vec![neighbors(&[1]), neighbors(&[9])];
        assert_eq!(recall_x_at_y(&gt, &results, 1), 0.5);
    }

    #[test]
    fn ground_truth_matches_exact_search() {
        let db = VectorSet::from_fn(2, 50, |r, _| r as f32);
        let q = VectorSet::from_rows(2, &[10.2, 10.2, 40.9, 40.9]);
        let gt = ground_truth(&q, &db, Metric::L2, 2);
        assert_eq!(gt.ids[0], vec![10, 11]);
        assert_eq!(gt.ids[1], vec![41, 40]);
    }

    #[test]
    fn duplicated_vectors_keep_recall_stable() {
        // Rows i and i+10 are identical, so every score ties pairwise and
        // ground truth is decided purely by the tie rule (lower id wins).
        let db = VectorSet::from_fn(2, 20, |r, _| (r % 10) as f32);
        let q = VectorSet::from_rows(2, &[3.1, 3.1]);
        let gt = ground_truth(&q, &db, Metric::L2, 3);
        assert_eq!(gt.ids[0], vec![3, 13, 4]);
        // A retrieval pipeline applying the same rule scores recall 1.0;
        // resolving even one tie the other way would drop it to 2/3.
        let aligned = vec![vec![
            Neighbor::new(3, 0.0),
            Neighbor::new(13, 0.0),
            Neighbor::new(4, -1.0),
        ]];
        assert_eq!(recall_x_at_y(&gt, &aligned, 3), 1.0);
        let misaligned = vec![vec![
            Neighbor::new(3, 0.0),
            Neighbor::new(13, 0.0),
            Neighbor::new(14, -1.0),
        ]];
        assert!((recall_x_at_y(&gt, &misaligned, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn higher_nprobe_cannot_reduce_recall_shape() {
        // Sanity on the metric itself: a superset of candidates can only
        // raise recall.
        let truth = vec![1u64, 2, 3, 4, 5];
        let small = neighbors(&[1, 2]);
        let big = neighbors(&[1, 2, 3, 9, 4]);
        assert!(recall_one(&truth, &big, 5) >= recall_one(&truth, &small, 5));
    }
}
