//! Readers/writers for the TexMex vector file formats (`.fvecs`,
//! `.ivecs`, `.bvecs`) used by SIFT1M/SIFT1B, Deep1B and the standard ANN
//! benchmarks.
//!
//! Each record is a little-endian `u32` dimension `d` followed by `d`
//! elements (`f32` for fvecs, `i32` for ivecs, `u8` for bvecs). With these
//! a user can run this reproduction on the paper's *actual* datasets
//! instead of the synthetic stand-ins.

use anna_vector::VectorSet;
use std::io::{self, Read, Write};

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false); // clean EOF at a record boundary
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated vector record",
            ));
        }
        filled += n;
    }
    Ok(true)
}

fn read_dim<R: Read>(r: &mut R) -> io::Result<Option<usize>> {
    let mut head = [0u8; 4];
    if !read_exact_or_eof(r, &mut head)? {
        return Ok(None);
    }
    let d = u32::from_le_bytes(head) as usize;
    if d == 0 || d > 1_000_000 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("implausible vector dimension {d}"),
        ));
    }
    Ok(Some(d))
}

/// Reads an `.fvecs` stream into a [`VectorSet`]. Pass `limit` to stop
/// after that many vectors (`usize::MAX` reads everything).
///
/// # Errors
///
/// Returns an error on I/O failure, truncated records, inconsistent
/// dimensions, or an implausible dimension header.
pub fn read_fvecs<R: Read>(mut r: R, limit: usize) -> io::Result<VectorSet> {
    let mut dim = 0usize;
    let mut data: Vec<f32> = Vec::new();
    let mut count = 0usize;
    while count < limit {
        let Some(d) = read_dim(&mut r)? else { break };
        if dim == 0 {
            dim = d;
        } else if d != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("dimension changed from {dim} to {d} at vector {count}"),
            ));
        }
        let mut buf = vec![0u8; d * 4];
        if !read_exact_or_eof(&mut r, &mut buf)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated payload",
            ));
        }
        data.extend(
            buf.chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        count += 1;
    }
    if dim == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "empty fvecs stream",
        ));
    }
    Ok(VectorSet::from_vec(dim, data))
}

/// Reads a `.bvecs` stream (u8 elements, e.g. SIFT1B) into a
/// [`VectorSet`], widening to `f32`.
///
/// # Errors
///
/// Same conditions as [`read_fvecs`].
pub fn read_bvecs<R: Read>(mut r: R, limit: usize) -> io::Result<VectorSet> {
    let mut dim = 0usize;
    let mut data: Vec<f32> = Vec::new();
    let mut count = 0usize;
    while count < limit {
        let Some(d) = read_dim(&mut r)? else { break };
        if dim == 0 {
            dim = d;
        } else if d != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "dimension changed",
            ));
        }
        let mut buf = vec![0u8; d];
        if !read_exact_or_eof(&mut r, &mut buf)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated payload",
            ));
        }
        data.extend(buf.iter().map(|&b| b as f32));
        count += 1;
    }
    if dim == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "empty bvecs stream",
        ));
    }
    Ok(VectorSet::from_vec(dim, data))
}

/// Reads an `.ivecs` stream (i32 elements — the format ground-truth
/// neighbor ids ship in) into per-query id lists.
///
/// # Errors
///
/// Same conditions as [`read_fvecs`].
pub fn read_ivecs<R: Read>(mut r: R, limit: usize) -> io::Result<Vec<Vec<u64>>> {
    let mut out = Vec::new();
    while out.len() < limit {
        let Some(d) = read_dim(&mut r)? else { break };
        let mut buf = vec![0u8; d * 4];
        if !read_exact_or_eof(&mut r, &mut buf)? {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated payload",
            ));
        }
        out.push(
            buf.chunks_exact(4)
                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]) as u64)
                .collect(),
        );
    }
    Ok(out)
}

/// Writes a [`VectorSet`] as `.fvecs`.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_fvecs<W: Write>(mut w: W, set: &VectorSet) -> io::Result<()> {
    for row in set.iter() {
        w.write_all(&(set.dim() as u32).to_le_bytes())?;
        for &v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Writes per-query id lists as `.ivecs` (ids truncated to `i32`, as the
/// format requires).
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_ivecs<W: Write>(mut w: W, lists: &[Vec<u64>]) -> io::Result<()> {
    for list in lists {
        w.write_all(&(list.len() as u32).to_le_bytes())?;
        for &id in list {
            w.write_all(&(id as i32).to_le_bytes())?;
        }
    }
    Ok(())
}

/// Element encoding of a vector file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecFormat {
    /// 4-byte little-endian floats (`.fvecs`).
    Fvecs,
    /// Unsigned bytes (`.bvecs`, e.g. SIFT1B base vectors).
    Bvecs,
}

/// Loads a real benchmark dataset from TexMex-format files: base vectors,
/// query vectors, and (optionally) ground-truth neighbor ids — the three
/// files SIFT1M/SIFT1B/Deep1B distributions ship.
///
/// Pass `limit` to cap the number of base vectors (useful for scaled
/// runs of a billion-vector file).
///
/// # Errors
///
/// Returns an error on I/O failure or malformed/mismatched files
/// (including a base/query dimension mismatch).
pub fn load_dataset(
    name: &str,
    metric: anna_vector::Metric,
    base: (&std::path::Path, VecFormat),
    queries: (&std::path::Path, VecFormat),
    ground_truth: Option<&std::path::Path>,
    limit: usize,
) -> io::Result<(crate::synth::Dataset, Option<Vec<Vec<u64>>>)> {
    let read = |path: &std::path::Path, fmt: VecFormat, n: usize| -> io::Result<VectorSet> {
        let f = std::fs::File::open(path)?;
        let r = std::io::BufReader::new(f);
        match fmt {
            VecFormat::Fvecs => read_fvecs(r, n),
            VecFormat::Bvecs => read_bvecs(r, n),
        }
    };
    let db = read(base.0, base.1, limit)?;
    let qs = read(queries.0, queries.1, usize::MAX)?;
    if db.dim() != qs.dim() {
        return Err(bad_dim(db.dim(), qs.dim()));
    }
    let gt = match ground_truth {
        Some(path) => {
            let f = std::fs::File::open(path)?;
            Some(read_ivecs(std::io::BufReader::new(f), qs.len())?)
        }
        None => None,
    };
    Ok((
        crate::synth::Dataset {
            name: name.to_string(),
            metric,
            db,
            queries: qs,
        },
        gt,
    ))
}

fn bad_dim(db: usize, q: usize) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("base dimension {db} does not match query dimension {q}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let set = VectorSet::from_fn(5, 7, |r, c| (r * 10 + c) as f32 * 0.5);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &set).unwrap();
        assert_eq!(buf.len(), 7 * (4 + 5 * 4));
        let back = read_fvecs(&buf[..], usize::MAX).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn fvecs_limit_stops_early() {
        let set = VectorSet::from_fn(3, 10, |r, _| r as f32);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &set).unwrap();
        let back = read_fvecs(&buf[..], 4).unwrap();
        assert_eq!(back.len(), 4);
        assert_eq!(back.row(3), set.row(3));
    }

    #[test]
    fn ivecs_roundtrip() {
        let lists = vec![vec![1u64, 2, 3], vec![7, 8, 9]];
        let mut buf = Vec::new();
        write_ivecs(&mut buf, &lists).unwrap();
        let back = read_ivecs(&buf[..], usize::MAX).unwrap();
        assert_eq!(back, lists);
    }

    #[test]
    fn bvecs_reads_bytes_as_floats() {
        // One 4-dim record: dim header + 4 bytes.
        let mut buf = Vec::new();
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(&[0u8, 127, 200, 255]);
        let set = read_bvecs(&buf[..], usize::MAX).unwrap();
        assert_eq!(set.row(0), &[0.0, 127.0, 200.0, 255.0]);
    }

    #[test]
    fn truncated_record_is_an_error() {
        let set = VectorSet::from_fn(4, 2, |r, _| r as f32);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &set).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_fvecs(&buf[..], usize::MAX).is_err());
    }

    #[test]
    fn inconsistent_dimension_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1.0f32.to_le_bytes());
        buf.extend_from_slice(&2.0f32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes()); // dimension changes
        buf.extend_from_slice(&[0u8; 12]);
        assert!(read_fvecs(&buf[..], usize::MAX).is_err());
    }

    #[test]
    fn implausible_dimension_is_an_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_fvecs(&buf[..], usize::MAX).is_err());
    }

    #[test]
    fn empty_stream_is_an_error() {
        assert!(read_fvecs(&[][..], usize::MAX).is_err());
    }

    #[test]
    fn load_dataset_reads_the_three_files() {
        use anna_vector::Metric;
        let dir = std::env::temp_dir().join(format!("anna-fvecs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = VectorSet::from_fn(4, 30, |r, c| (r * 4 + c) as f32);
        let queries = VectorSet::from_fn(4, 3, |r, _| r as f32);
        let gt = vec![vec![0u64, 1], vec![2, 3], vec![4, 5]];
        let bp = dir.join("base.fvecs");
        let qp = dir.join("query.fvecs");
        let gp = dir.join("gt.ivecs");
        write_fvecs(std::fs::File::create(&bp).unwrap(), &base).unwrap();
        write_fvecs(std::fs::File::create(&qp).unwrap(), &queries).unwrap();
        write_ivecs(std::fs::File::create(&gp).unwrap(), &gt).unwrap();

        let (ds, loaded_gt) = load_dataset(
            "demo",
            Metric::L2,
            (&bp, VecFormat::Fvecs),
            (&qp, VecFormat::Fvecs),
            Some(&gp),
            20, // limit base vectors
        )
        .unwrap();
        assert_eq!(ds.db.len(), 20);
        assert_eq!(ds.queries.len(), 3);
        assert_eq!(loaded_gt.unwrap(), gt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_dataset_rejects_dimension_mismatch() {
        use anna_vector::Metric;
        let dir = std::env::temp_dir().join(format!("anna-fvecs-mismatch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = VectorSet::from_fn(4, 5, |r, _| r as f32);
        let queries = VectorSet::from_fn(6, 2, |r, _| r as f32);
        let bp = dir.join("base.fvecs");
        let qp = dir.join("query.fvecs");
        write_fvecs(std::fs::File::create(&bp).unwrap(), &base).unwrap();
        write_fvecs(std::fs::File::create(&qp).unwrap(), &queries).unwrap();
        let res = load_dataset(
            "demo",
            Metric::L2,
            (&bp, VecFormat::Fvecs),
            (&qp, VecFormat::Fvecs),
            None,
            usize::MAX,
        );
        assert!(res.is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
