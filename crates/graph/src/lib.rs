//! Deterministic beam-search graph engine behind the shared
//! [`SearchEngine`] trait.
//!
//! The second index family on the ANNA substrate (ROADMAP item 3): a
//! degree-bounded proximity graph in the NSW/Vamana family, built by
//! seeded incremental insertion and searched with best-first beam
//! traversal over *PQ-compressed* vectors — the graph analogue of the
//! IVF-PQ engine's ADC scans, reusing `anna-vector` metrics and
//! `anna-quant` codebooks.
//!
//! Two properties make the engine fit the workspace's accounting
//! discipline:
//!
//! * **Tie-pinned determinism.** Construction and traversal order are
//!   pure functions of `(data, config)` and `(graph, query, beam)`: the
//!   frontier is a [`BinaryHeap`] over [`Neighbor`]'s total order (higher
//!   score first, ties to the lower id), entry points come from a seeded
//!   SplitMix64 stream, and queries are embarrassingly parallel — so
//!   results and traffic counters are bit-identical at every thread
//!   count.
//! * **Byte-exact pricing.** `plan()` *runs* the deterministic traversal
//!   and records each query's footprint (adjacency fetches, code scans);
//!   `execute()` re-traces the identical walk and measures. The
//!   [`TrafficModel`](anna_plan::TrafficModel) prices the footprints in
//!   the cluster-major byte vocabulary (adjacency → `cluster_meta_bytes`,
//!   PQ scans → `code_bytes`), so predicted == measured holds exactly,
//!   like every other engine.

#![deny(missing_docs)]

use std::collections::BinaryHeap;

use anna_engine::{EngineRun, MeasuredTraffic, PlanOptions, QuerySpec, SearchEngine};
use anna_plan::{EnginePlan, GraphPlan, GraphQueryPlan, GraphShape, GraphWorkload};
use anna_quant::codes::PackedCodes;
use anna_quant::pq::{PqCodebook, PqConfig};
use anna_telemetry::Telemetry;
use anna_vector::{metric, Metric, Neighbor, TopK, VectorSet};

/// Construction parameters for a [`PqGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphConfig {
    /// Similarity metric.
    pub metric: Metric,
    /// PQ sub-vector count `M` (must divide the data dimension).
    pub m: usize,
    /// Codewords per codebook `k*` (16 or 256).
    pub kstar: usize,
    /// Maximum out-degree; adjacency lists are stored padded to this
    /// width, so every visited node fetches the same `degree · 4` bytes.
    pub degree: usize,
    /// Beam width used while inserting nodes during construction.
    pub build_beam: usize,
    /// Seed for the entry-point stream (construction and search).
    pub seed: u64,
    /// Number of seeded entry points the traversal starts from.
    pub entry_candidates: usize,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            metric: Metric::L2,
            m: 4,
            kstar: 16,
            degree: 16,
            build_beam: 32,
            seed: 0x5EED_CAFE,
            entry_candidates: 4,
        }
    }
}

/// SplitMix64 step — the same tiny generator `anna-testkit` uses, inlined
/// so the graph crate stays free of test-harness dependencies in its
/// build path.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A degree-bounded proximity graph over PQ-compressed vectors.
pub struct PqGraph {
    metric: Metric,
    dim: usize,
    codebook: PqCodebook,
    codes: PackedCodes,
    /// Out-neighbors per node, each at most `degree` long, sorted by
    /// similarity to the node (best first, ties to the lower id).
    adjacency: Vec<Vec<u32>>,
    /// Seeded entry points (sorted, deduplicated).
    entries: Vec<u32>,
    degree: usize,
}

impl std::fmt::Debug for PqGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PqGraph")
            .field("num_nodes", &self.adjacency.len())
            .field("degree", &self.degree)
            .field("entries", &self.entries)
            .finish_non_exhaustive()
    }
}

impl PqGraph {
    /// Builds the graph by seeded incremental insertion: nodes join in
    /// ascending id order; each new node beam-searches the partial graph
    /// with *exact* f32 similarity (construction quality should not
    /// depend on PQ error), links to its best `degree` discoveries, and
    /// adds reverse edges pruned back to the best `degree` per node
    /// (ties to the lower id). Vectors are PQ-trained and encoded once;
    /// search-time scans read only the codes.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, `config.m` does not divide the
    /// dimension, `config.kstar` is not 16/256, or
    /// `config.degree == 0`.
    pub fn build(data: &VectorSet, config: &GraphConfig) -> PqGraph {
        assert!(!data.is_empty(), "cannot build a graph over no vectors");
        assert!(config.degree > 0, "degree must be positive");
        assert!(
            data.len() <= u32::MAX as usize,
            "u32 node ids cover at most 2^32 vectors"
        );
        let pq_config = match config.kstar {
            16 => PqConfig::k16(config.m),
            256 => PqConfig::k256(config.m),
            other => panic!("ANNA supports k* of 16 and 256, got {other}"),
        };
        let codebook = PqCodebook::train(data, &pq_config);
        let codes = codebook.encode_all(data);
        let n = data.len();
        let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
        for i in 1..n {
            let q = data.row(i);
            let beam = config.build_beam.max(config.degree);
            // Entry points into the partial graph: node 0 plus seeded
            // picks below i.
            let mut entries = vec![0u32];
            for t in 0..config.entry_candidates {
                entries.push(
                    (splitmix(config.seed ^ (i as u64) ^ ((t as u64) << 32)) % i as u64) as u32,
                );
            }
            entries.sort_unstable();
            entries.dedup();
            let found = exact_beam_search(data, &adjacency, &entries, q, config.metric, beam);
            let links = robust_prune(data, found, config.degree, config.metric);
            for &l in &links {
                adjacency[l as usize].push(i as u32);
                if adjacency[l as usize].len() > config.degree {
                    let base = data.row(l as usize);
                    let pool: Vec<Neighbor> = adjacency[l as usize]
                        .iter()
                        .map(|&nb| Neighbor {
                            id: nb as u64,
                            score: config.metric.similarity(base, data.row(nb as usize)),
                        })
                        .collect();
                    adjacency[l as usize] = robust_prune(data, pool, config.degree, config.metric);
                }
            }
            adjacency[i] = links;
        }
        // Search-time entry points: seeded picks over the full id range.
        let mut entries = vec![0u32];
        for t in 0..config.entry_candidates {
            entries.push((splitmix(config.seed ^ ((t as u64) << 16)) % n as u64) as u32);
        }
        entries.sort_unstable();
        entries.dedup();
        PqGraph {
            metric: config.metric,
            dim: data.dim(),
            codebook,
            codes,
            adjacency,
            entries,
            degree: config.degree,
        }
    }

    /// The similarity metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Vector dimension `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Maximum out-degree (adjacency lists are priced padded to this).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The seeded entry points the traversal starts from.
    pub fn entries(&self) -> &[u32] {
        &self.entries
    }

    /// Node `i`'s out-neighbors (best first).
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adjacency[i]
    }

    /// The trained PQ codebook.
    pub fn codebook(&self) -> &PqCodebook {
        &self.codebook
    }

    /// The graph-search shape for per-query result count `k`.
    pub fn shape(&self, k: usize) -> GraphShape {
        GraphShape {
            d: self.dim,
            m: self.codebook.m(),
            kstar: self.codebook.kstar(),
            metric: self.metric,
            num_nodes: self.num_nodes(),
            degree: self.degree,
            k,
        }
    }

    /// Best-first beam traversal for one query at beam width `ef`,
    /// scoring nodes with ADC over the PQ codes. Returns the top-`ef`
    /// heap plus the traversal footprint (adjacency fetches, code
    /// scans). Pure in `(self, q, ef)` — the planner and the executor
    /// call this same function and must observe identical footprints.
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != self.dim()` or `ef == 0`.
    pub fn traverse(&self, q: &[f32], ef: usize) -> (TopK, GraphQueryPlan) {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        assert!(ef > 0, "beam width must be positive");
        let adc = AdcTable::build(q, &self.codebook, self.metric);
        let mut scored = vec![false; self.num_nodes()];
        let mut frontier: BinaryHeap<Neighbor> = BinaryHeap::new();
        let mut results = TopK::new(ef);
        let mut footprint = GraphQueryPlan::default();
        let mut code_buf = vec![0u8; self.codebook.m()];
        for &e in &self.entries {
            let id = e as usize;
            if scored[id] {
                continue;
            }
            scored[id] = true;
            footprint.scanned += 1;
            self.codes.read_into(id, &mut code_buf);
            let score = adc.score(&code_buf);
            results.push(e as u64, score);
            frontier.push(Neighbor {
                id: e as u64,
                score,
            });
        }
        while let Some(best) = frontier.pop() {
            // Every remaining candidate is worse than `best`; once the
            // beam is full and `best` cannot improve it, expansion stops.
            if results.len() == ef && best.score < results.threshold() {
                break;
            }
            footprint.visited += 1;
            for &nb in &self.adjacency[best.id as usize] {
                let id = nb as usize;
                if scored[id] {
                    continue;
                }
                scored[id] = true;
                footprint.scanned += 1;
                self.codes.read_into(id, &mut code_buf);
                let score = adc.score(&code_buf);
                if results.push(nb as u64, score) || results.len() < ef {
                    frontier.push(Neighbor {
                        id: nb as u64,
                        score,
                    });
                }
            }
        }
        (results, footprint)
    }
}

/// Vamana-style occlusion pruning (RobustPrune at α = 1) over a pool
/// whose scores are similarities to the base point: repeatedly keep the
/// candidate most similar to the base (ties to the lower id), then drop
/// every remaining candidate that is at least as similar to the kept
/// one as to the base. Nearby clumps collapse to one edge each,
/// so edges toward *distinct directions* — including long inter-cluster
/// links — survive; plain nearest-`degree` pruning would keep only the
/// local clump and fragment clustered data into disconnected components.
fn robust_prune(data: &VectorSet, mut pool: Vec<Neighbor>, degree: usize, m: Metric) -> Vec<u32> {
    // Neighbor's total order: higher score first, ties to the lower id.
    pool.sort_by(|a, b| b.cmp(a));
    pool.dedup_by_key(|nb| nb.id);
    let mut kept = Vec::with_capacity(degree);
    while let Some(p) = pool.first().copied() {
        kept.push(p.id as u32);
        if kept.len() == degree {
            break;
        }
        let pv = data.row(p.id as usize);
        pool.retain(|c| c.id != p.id && m.similarity(pv, data.row(c.id as usize)) < c.score);
    }
    kept
}

/// Construction-time best-first traversal with exact f32 scoring over
/// `data`, restricted to the already-inserted prefix reachable from
/// `entries`. Returns up to `beam` neighbors, best first.
fn exact_beam_search(
    data: &VectorSet,
    adjacency: &[Vec<u32>],
    entries: &[u32],
    q: &[f32],
    m: Metric,
    beam: usize,
) -> Vec<Neighbor> {
    let mut scored = vec![false; data.len()];
    let mut frontier: BinaryHeap<Neighbor> = BinaryHeap::new();
    let mut results = TopK::new(beam);
    for &e in entries {
        let id = e as usize;
        if scored[id] {
            continue;
        }
        scored[id] = true;
        let score = m.similarity(q, data.row(id));
        results.push(e as u64, score);
        frontier.push(Neighbor {
            id: e as u64,
            score,
        });
    }
    while let Some(best) = frontier.pop() {
        if results.len() == beam && best.score < results.threshold() {
            break;
        }
        for &nb in &adjacency[best.id as usize] {
            let id = nb as usize;
            if scored[id] {
                continue;
            }
            scored[id] = true;
            let score = m.similarity(q, data.row(id));
            if results.push(nb as u64, score) || results.len() < beam {
                frontier.push(Neighbor {
                    id: nb as u64,
                    score,
                });
            }
        }
    }
    results.into_sorted_vec()
}

/// A flat asymmetric-distance table: `table[j·k* + c]` is sub-space `j`'s
/// contribution of codeword `c` to the similarity (absolute encoding, no
/// residuals — the graph has no coarse centroids).
struct AdcTable {
    table: Vec<f32>,
    kstar: usize,
}

impl AdcTable {
    fn build(q: &[f32], codebook: &PqCodebook, m: Metric) -> AdcTable {
        let sub = codebook.sub_dim();
        let kstar = codebook.kstar();
        let mut table = vec![0f32; codebook.m() * kstar];
        for j in 0..codebook.m() {
            let qj = &q[j * sub..(j + 1) * sub];
            let book = codebook.book(j);
            for c in 0..kstar {
                table[j * kstar + c] = match m {
                    Metric::InnerProduct => metric::dot(qj, book.row(c)),
                    Metric::L2 => -metric::l2_squared(qj, book.row(c)),
                };
            }
        }
        AdcTable { table, kstar }
    }

    fn score(&self, codes: &[u8]) -> f32 {
        codes
            .iter()
            .enumerate()
            .map(|(j, &c)| self.table[j * self.kstar + c as usize])
            .sum()
    }
}

impl SearchEngine for PqGraph {
    fn name(&self) -> &'static str {
        "graph"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    /// The graph's scope is its seeded entry set — query-independent, so
    /// callers get the ids the traversal will start from.
    fn query_scope(&self, _q: &[f32], _spec: &QuerySpec) -> Vec<usize> {
        self.entries.iter().map(|&e| e as usize).collect()
    }

    /// Plans by *running* the deterministic traversal per query and
    /// recording its footprint. Beam width is `spec.scope.max(spec.k)`.
    ///
    /// # Panics
    ///
    /// Panics if a re-rank policy is requested (the graph engine is
    /// single-phase) or the specs are not uniform in `k`.
    fn plan(
        &self,
        queries: &VectorSet,
        specs: &[QuerySpec],
        _scopes: &[Vec<usize>],
        options: &PlanOptions,
    ) -> EnginePlan {
        assert!(
            options.rerank.is_none(),
            "the graph engine has no re-rank phase"
        );
        assert_eq!(specs.len(), queries.len(), "one spec per query");
        let k = specs.first().map(|s| s.k).unwrap_or(1).max(1);
        assert!(
            specs.iter().all(|s| s.k == k || specs.is_empty()),
            "graph plans require a uniform k across the batch"
        );
        let beams: Vec<usize> = specs.iter().map(|s| s.scope.max(s.k)).collect();
        let per_query = queries
            .iter()
            .zip(&beams)
            .map(|(q, &ef)| self.traverse(q, ef).1)
            .collect();
        EnginePlan::Graph {
            workload: GraphWorkload {
                shape: self.shape(k),
                beams,
            },
            plan: GraphPlan { per_query },
        }
    }

    /// Re-traces every query's planned traversal on up to `threads`
    /// workers (atomic-cursor claiming into per-query slots — results
    /// and counters are bit-identical at every thread count) and
    /// measures the traffic the plan predicted.
    ///
    /// # Panics
    ///
    /// Panics if `plan` is not a graph plan, was built for a different
    /// batch size, or `threads == 0`.
    fn execute(
        &self,
        queries: &VectorSet,
        plan: &EnginePlan,
        threads: usize,
        tel: &Telemetry,
    ) -> EngineRun {
        let EnginePlan::Graph { workload, plan } = plan else {
            panic!("graph engine handed a {} plan", plan.engine());
        };
        assert_eq!(
            workload.b(),
            queries.len(),
            "plan was built for a different batch"
        );
        assert!(threads > 0, "at least one worker required");
        let k = workload.shape.k;
        let b = queries.len();
        let mut slots: Vec<(Vec<Neighbor>, GraphQueryPlan)> = vec![Default::default(); b];
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let workers = threads.min(b.max(1));
        // Workers claim query indices off an atomic cursor and write
        // disjoint per-query slots, so the output is independent of
        // thread scheduling.
        let slot_ptr = SlotWriter(slots.as_mut_ptr());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let writer = &slot_ptr;
                    loop {
                        let qi = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if qi >= b {
                            return;
                        }
                        let ef = workload.beams[qi];
                        let (topk, footprint) = self.traverse(queries.row(qi), ef);
                        let mut hits = topk.into_sorted_vec();
                        hits.truncate(k);
                        // SAFETY: each qi is claimed exactly once, so no
                        // two workers write the same slot.
                        unsafe { writer.write(qi, (hits, footprint)) };
                    }
                });
            }
        });
        let mut measured = MeasuredTraffic::default();
        let shape = &workload.shape;
        let mut results = Vec::with_capacity(b);
        let mut planned_total = GraphQueryPlan::default();
        for (qi, (hits, footprint)) in slots.into_iter().enumerate() {
            measured.cluster_meta_bytes += footprint.visited * shape.adjacency_bytes_per_node();
            measured.code_bytes += footprint.scanned * shape.encoded_bytes_per_vector() as u64;
            planned_total.visited += plan.per_query[qi].visited;
            planned_total.scanned += plan.per_query[qi].scanned;
            results.push(hits);
        }
        tel.counter_add("engine.graph.queries", b as u64);
        tel.counter_add("engine.graph.visited_nodes", planned_total.visited);
        tel.counter_add("engine.graph.scanned_codes", planned_total.scanned);
        EngineRun { results, measured }
    }
}

/// Raw-pointer slot writer for the scoped worker pool: workers claim
/// disjoint indices, so writes never alias.
struct SlotWriter<T>(*mut T);

unsafe impl<T: Send> Sync for SlotWriter<T> {}

impl<T> SlotWriter<T> {
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one caller.
    unsafe fn write(&self, i: usize, value: T) {
        unsafe { self.0.add(i).write(value) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_vector::exact;

    fn clustered(dim: usize, n: usize) -> VectorSet {
        // The row-scaled epsilon keeps every row distinct: exact
        // duplicate vectors are unreachable pathologies for *any*
        // proximity graph (every in-edge to the higher-id copy is
        // occluded by the lower-id one), so the generator avoids them.
        VectorSet::from_fn(dim, n, |r, c| {
            (r % 9) as f32 * 11.0 + ((r * 31 + c * 7) % 17) as f32 * 0.3 + r as f32 * 1e-3
        })
    }

    fn config(metric: Metric) -> GraphConfig {
        GraphConfig {
            metric,
            degree: 8,
            build_beam: 24,
            ..GraphConfig::default()
        }
    }

    #[test]
    fn build_respects_degree_bound_and_is_seeded() {
        let data = clustered(8, 300);
        let g = PqGraph::build(&data, &config(Metric::L2));
        assert_eq!(g.num_nodes(), 300);
        for i in 0..g.num_nodes() {
            assert!(g.neighbors(i).len() <= g.degree(), "node {i} over degree");
        }
        // Same seed, same graph; different seed, (almost surely) not.
        let same = PqGraph::build(&data, &config(Metric::L2));
        for i in 0..g.num_nodes() {
            assert_eq!(g.neighbors(i), same.neighbors(i), "node {i} not seeded");
        }
    }

    #[test]
    fn traversal_is_deterministic_and_plan_matches_execution() {
        for metric in [Metric::L2, Metric::InnerProduct] {
            let data = clustered(8, 400);
            let g = PqGraph::build(&data, &config(metric));
            let queries = data.gather(&(0..12).map(|i| i * 33 % 400).collect::<Vec<_>>());
            let specs = vec![QuerySpec { k: 5, scope: 20 }; queries.len()];
            let scopes: Vec<Vec<usize>> = queries
                .iter()
                .map(|q| g.query_scope(q, &specs[0]))
                .collect();
            let plan = g.plan(&queries, &specs, &scopes, &PlanOptions::default());
            let predicted = g.price(&plan);
            let tel = Telemetry::disabled();
            let base = g.execute(&queries, &plan, 1, &tel);
            g.verify(&predicted, None, &base.measured)
                .expect("graph predicted == measured");
            for threads in [2usize, 4, 8] {
                let run = g.execute(&queries, &plan, threads, &tel);
                assert_eq!(run.results, base.results, "{metric:?} threads={threads}");
                assert_eq!(run.measured, base.measured, "{metric:?} threads={threads}");
            }
        }
    }

    #[test]
    fn wider_beams_do_not_hurt_recall_much_and_reach_truth_at_scale() {
        let data = clustered(8, 500);
        // Fine quantizer (m=8, k*=256 over dim 8 = per-scalar codebooks):
        // this test isolates *traversal* quality, so PQ error must not be
        // the recall ceiling the way it is with the default m=4/k*=16.
        let g = PqGraph::build(
            &data,
            &GraphConfig {
                m: 8,
                kstar: 256,
                ..config(Metric::L2)
            },
        );
        let queries = data.gather(&(0..16).collect::<Vec<_>>());
        let truth = exact::search(&queries, &data, Metric::L2, 5);
        let recall_at = |ef: usize| {
            let specs = vec![QuerySpec { k: 5, scope: ef }; queries.len()];
            let scopes: Vec<Vec<usize>> = queries
                .iter()
                .map(|q| g.query_scope(q, &specs[0]))
                .collect();
            let plan = g.plan(&queries, &specs, &scopes, &PlanOptions::default());
            let run = g.execute(&queries, &plan, 2, &Telemetry::disabled());
            let mut hit = 0usize;
            for (got, want) in run.results.iter().zip(&truth) {
                let want_ids: Vec<u64> = want.iter().map(|n| n.id).collect();
                hit += got.iter().filter(|n| want_ids.contains(&n.id)).count();
            }
            hit as f64 / (queries.len() * 5) as f64
        };
        let narrow = recall_at(8);
        let wide = recall_at(128);
        assert!(
            wide >= narrow,
            "recall should not degrade with beam width: {narrow} -> {wide}"
        );
        assert!(wide >= 0.8, "wide-beam recall too low: {wide}");
    }

    #[test]
    fn results_are_truncated_to_k_and_ids_are_node_ids() {
        let data = clustered(8, 200);
        let g = PqGraph::build(&data, &config(Metric::L2));
        let queries = data.gather(&[3, 77]);
        let specs = vec![QuerySpec { k: 3, scope: 40 }; 2];
        let scopes: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| g.query_scope(q, &specs[0]))
            .collect();
        let plan = g.plan(&queries, &specs, &scopes, &PlanOptions::default());
        let run = g.execute(&queries, &plan, 1, &Telemetry::disabled());
        for hits in &run.results {
            assert_eq!(hits.len(), 3);
            for n in hits {
                assert!((n.id as usize) < 200);
            }
            assert!(hits[0].score >= hits[2].score);
        }
    }

    #[test]
    #[should_panic(expected = "no re-rank phase")]
    fn rerank_is_rejected() {
        let data = clustered(8, 64);
        let g = PqGraph::build(&data, &config(Metric::L2));
        let queries = data.gather(&[0]);
        let specs = vec![QuerySpec { k: 2, scope: 8 }];
        let scopes = vec![g.query_scope(queries.row(0), &specs[0])];
        g.plan(
            &queries,
            &specs,
            &scopes,
            &PlanOptions {
                rerank: Some(anna_plan::RerankPolicy {
                    mode: anna_plan::RerankMode::Adaptive,
                    alpha: 4,
                }),
            },
        );
    }
}
