//! Property-based tests for the accelerator model (seeded `anna-testkit`
//! harness; failures report a replayable seed).

use anna_core::engine::{analytic, cycle, stepped};
use anna_core::host::MemoryLayout;
use anna_core::{
    plan, AnnaConfig, BatchWorkload, PHeap, QueryWorkload, ScmAllocation, SearchShape,
};
use anna_index::{IvfPqConfig, IvfPqIndex};
use anna_testkit::{forall, TestRng};
use anna_vector::{f16, Metric, TopK, VectorSet};

fn arb_shape(rng: &mut TestRng) -> SearchShape {
    let (kstar, m) = *rng.pick(&[(16usize, 4usize), (16, 8), (256, 4), (256, 8)]);
    let metric = *rng.pick(&[Metric::L2, Metric::InnerProduct]);
    SearchShape {
        d: m * 2,
        m,
        kstar,
        metric,
        num_clusters: rng.usize(8..64),
        k: rng.usize(10..1000),
    }
}

/// The P-heap (with f16 score rounding) always agrees with a software
/// top-k selector fed the same f16-rounded scores.
#[test]
fn pheap_matches_software_topk() {
    forall("pheap matches software topk", 48, |rng| {
        let n = rng.usize(1..300);
        let scores = rng.vec_f32(n, -1.0e3..1.0e3);
        let k = rng.usize(1..20);
        let mut heap = PHeap::new(k);
        let mut topk = TopK::new(k);
        for (id, &s) in scores.iter().enumerate() {
            heap.offer(id as u64, s);
            topk.push(id as u64, f16::round_trip(s));
        }
        let h: Vec<u64> = heap.drain_sorted().iter().map(|n| n.id).collect();
        let t: Vec<u64> = topk.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(h, t);
    });
}

/// Spilling and filling a P-heap never changes subsequent behavior.
#[test]
fn pheap_spill_fill_is_transparent() {
    forall("pheap spill fill is transparent", 48, |rng| {
        let n1 = rng.usize(1..100);
        let first = rng.vec_f32(n1, -100.0..100.0);
        let n2 = rng.usize(1..100);
        let second = rng.vec_f32(n2, -100.0..100.0);
        let k = rng.usize(1..10);
        let mut direct = PHeap::new(k);
        let mut spilled = PHeap::new(k);
        for (id, &s) in first.iter().enumerate() {
            direct.offer(id as u64, s);
            spilled.offer(id as u64, s);
        }
        let records = spilled.spill(5);
        let mut resumed = PHeap::new(k);
        resumed.fill(&records, 5);
        for (off, &s) in second.iter().enumerate() {
            let id = (1000 + off) as u64;
            direct.offer(id, s);
            resumed.offer(id, s);
        }
        assert_eq!(direct.drain_sorted(), resumed.drain_sorted());
    });
}

/// Analytic single-query timing is monotone in cluster sizes and never
/// beats the bandwidth bound.
#[test]
fn analytic_single_query_sane() {
    forall("analytic single query sane", 48, |rng| {
        let shape = arb_shape(rng);
        let sizes: Vec<usize> = (0..rng.usize(1..32))
            .map(|_| rng.usize(1..50_000))
            .collect();
        let g = *rng.pick(&[1usize, 2, 4, 8, 16]);
        let cfg = AnnaConfig::paper();
        let w = QueryWorkload {
            shape,
            visited_cluster_sizes: sizes.clone(),
        };
        let r = analytic::single_query(&cfg, &w, g);
        assert!(r.cycles > 0.0);
        assert!(r.cycles + 1e-6 >= r.traffic.total() as f64 / cfg.bytes_per_cycle());

        // Doubling every cluster can only slow the query down.
        let big = QueryWorkload {
            shape,
            visited_cluster_sizes: sizes.iter().map(|&s| s * 2).collect(),
        };
        let rb = analytic::single_query(&cfg, &big, g);
        assert!(rb.cycles >= r.cycles);
    });
}

/// The batch schedule covers every (query, cluster) visit exactly once
/// regardless of allocation.
#[test]
fn schedule_is_a_partition() {
    forall("schedule is a partition", 48, |rng| {
        let shape = arb_shape(rng);
        let b = rng.usize(1..40);
        let w = rng.usize(1..6);
        let g = *rng.pick(&[1usize, 2, 4, 8, 16]);
        let cfg = AnnaConfig::paper();
        let c = shape.num_clusters;
        let workload = BatchWorkload {
            shape,
            cluster_sizes: (0..c).map(|i| 10 + i * 3).collect(),
            visits: (0..b)
                .map(|q| {
                    (0..w.min(c))
                        .map(|i| (q * 7 + i * 3) % c)
                        .collect::<Vec<_>>()
                })
                .map(|mut v: Vec<usize>| {
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect(),
        };
        let schedule = plan::plan(
            &cfg.plan_params(),
            &workload,
            ScmAllocation::IntraQuery { scm_per_query: g },
        );
        let mut count = vec![0usize; b];
        for round in &schedule.rounds {
            assert!(round.queries.len() <= schedule.queries_per_round);
            for &q in &round.queries {
                assert!(workload.visits[q].contains(&round.cluster));
                count[q] += 1;
            }
        }
        for (q, visits) in workload.visits.iter().enumerate() {
            assert_eq!(count[q], visits.len(), "query {q} visit count");
        }
        // Each non-empty visited cluster fetches exactly once.
        let visited: std::collections::HashSet<usize> =
            workload.visits.iter().flatten().cloned().collect();
        assert_eq!(schedule.clusters_fetched() as usize, visited.len());
    });
}

/// Analytic and event-driven batch engines agree within tolerance and
/// report identical code traffic, on arbitrary workloads.
#[test]
fn engines_agree_on_random_batches() {
    forall("engines agree on random batches", 48, |rng| {
        let shape = arb_shape(rng);
        let b = rng.usize(4..32);
        let cfg = AnnaConfig::paper();
        let c = shape.num_clusters;
        let cluster_sizes: Vec<usize> = (0..c).map(|_| rng.usize(100..20_100)).collect();
        let visits: Vec<Vec<usize>> = (0..b)
            .map(|_| {
                let w = rng.usize(1..5);
                let mut v: Vec<usize> = (0..w).map(|_| rng.usize(0..c)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let workload = BatchWorkload {
            shape,
            cluster_sizes,
            visits,
        };
        let a = analytic::batch(&cfg, &workload, ScmAllocation::Auto);
        let cy = cycle::batch(&cfg, &workload, ScmAllocation::Auto);
        assert_eq!(a.traffic.code_bytes, cy.traffic.code_bytes);
        assert_eq!(a.traffic.topk_spill_bytes, cy.traffic.topk_spill_bytes);
        assert_eq!(a.traffic.topk_fill_bytes, cy.traffic.topk_fill_bytes);
        let ratio = cy.cycles / a.cycles;
        assert!(
            (0.6..1.6).contains(&ratio),
            "engines diverge: ratio {ratio}"
        );
    });
}

/// The cycle-stepped engine tracks the analytic engine on arbitrary
/// single-query workloads (the analytic prologue serializes the first
/// cluster's fetch, so at small W the streaming engines run up to
/// ~1.5x faster; from W >= 3 the band tightens), and serialized stages
/// never beat the double-buffered pipeline.
#[test]
fn stepped_engine_tracks_analytic() {
    forall("stepped engine tracks analytic", 48, |rng| {
        let shape = arb_shape(rng);
        let sizes: Vec<usize> = (0..rng.usize(3..10))
            .map(|_| rng.usize(500..30_000))
            .collect();
        let g = *rng.pick(&[1usize, 4, 16]);
        let cfg = AnnaConfig::paper();
        let w = QueryWorkload {
            shape,
            visited_cluster_sizes: sizes,
        };
        let a = analytic::single_query(&cfg, &w, g);
        let st = stepped::single_query(&cfg, &w, g);
        let ratio = st.cycles as f64 / a.cycles;
        assert!((0.6..1.4).contains(&ratio), "ratio {ratio}");

        let serial = analytic::single_query_unbuffered(&cfg, &w, g);
        assert!(serial.cycles + 1e-6 >= a.cycles, "unbuffered beat buffered");
        assert_eq!(serial.traffic.total(), a.traffic.total());
    });
}

/// Device memory layouts are always line-aligned and pairwise
/// disjoint, for random index shapes and batch plans.
#[test]
fn memory_layouts_never_overlap() {
    forall("memory layouts never overlap", 24, |rng| {
        let n = rng.usize(50..300);
        let clusters = rng.usize(2..12);
        let batch = rng.usize(1..64);
        let w = rng.usize(1..8);
        let data = VectorSet::from_fn(8, n, |r, c| ((r * 31 + c * 7) % 23) as f32);
        let index = IvfPqIndex::build(
            &data,
            &IvfPqConfig {
                num_clusters: clusters,
                m: 4,
                kstar: 16,
                coarse_iters: 2,
                pq_iters: 1,
                ..IvfPqConfig::default()
            },
        );
        let layout = MemoryLayout::plan(&AnnaConfig::paper(), &index, batch, w);
        let regions = layout.regions();
        for r in &regions {
            assert_eq!(r.base % 64, 0);
        }
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                assert!(
                    !regions[i].overlaps(&regions[j]),
                    "regions {i} and {j} overlap"
                );
            }
        }
        // Every cluster's codes sit inside the code region.
        for (i, m) in layout.meta.iter().enumerate() {
            let end = m.code_base + index.cluster(i).encoded_bytes();
            assert!(m.code_base >= layout.codes.base && end <= layout.codes.end());
        }
    });
}

/// More memory bandwidth never slows either engine down.
#[test]
fn bandwidth_monotonicity() {
    forall("bandwidth monotonicity", 48, |rng| {
        let shape = arb_shape(rng);
        let sizes: Vec<usize> = (0..rng.usize(1..16))
            .map(|_| rng.usize(100..20_000))
            .collect();
        let slow = AnnaConfig {
            mem_bandwidth_gbps: 16.0,
            ..AnnaConfig::paper()
        };
        let fast = AnnaConfig {
            mem_bandwidth_gbps: 256.0,
            ..AnnaConfig::paper()
        };
        let w = QueryWorkload {
            shape,
            visited_cluster_sizes: sizes,
        };
        let rs = analytic::single_query(&slow, &w, 16);
        let rf = analytic::single_query(&fast, &w, 16);
        assert!(rf.cycles <= rs.cycles + 1e-6);
        let cs = cycle::single_query(&slow, &w, 16);
        let cf = cycle::single_query(&fast, &w, 16);
        assert!(cf.cycles <= cs.cycles + 1e-6);
    });
}
