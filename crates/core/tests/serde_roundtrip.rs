//! Serde round-trips for the configuration and workload types downstream
//! users persist (sweep configs, workload definitions, reports).

use anna_core::{AnnaConfig, BatchWorkload, QueryWorkload, SearchShape, TimingReport};
use anna_vector::Metric;

/// A tiny JSON-ish check via the serde data model: round-trip through
/// `serde_json`-free token comparison is unavailable without a format
/// crate, so round-trip through the `serde` test in-memory format is
/// emulated with a manual field comparison after clone — what we actually
/// assert here is `Serialize`/`Deserialize` impl presence plus value
/// equality semantics.
fn shape() -> SearchShape {
    SearchShape {
        d: 128,
        m: 64,
        kstar: 256,
        metric: Metric::L2,
        num_clusters: 10_000,
        k: 1000,
    }
}

#[test]
fn config_is_cloneable_and_comparable() {
    let a = AnnaConfig::paper();
    let b = a.clone();
    assert_eq!(a, b);
    let c = AnnaConfig {
        n_u: 32,
        ..a.clone()
    };
    assert_ne!(a, c);
}

#[test]
fn workloads_compare_structurally() {
    let w1 = QueryWorkload {
        shape: shape(),
        visited_cluster_sizes: vec![1, 2, 3],
    };
    let w2 = w1.clone();
    assert_eq!(w1, w2);
    let b1 = BatchWorkload {
        shape: shape(),
        cluster_sizes: vec![10; 4],
        visits: vec![vec![0], vec![1, 2]],
    };
    assert_eq!(b1, b1.clone());
    assert_eq!(b1.b(), 2);
}

#[test]
fn serialize_impls_exist_for_report_types() {
    // Compile-time proof that the public data types implement Serialize
    // (the harness writes them into reports).
    fn assert_serialize<T: serde::Serialize>() {}
    assert_serialize::<AnnaConfig>();
    assert_serialize::<SearchShape>();
    assert_serialize::<QueryWorkload>();
    assert_serialize::<BatchWorkload>();
    assert_serialize::<TimingReport>();
    assert_serialize::<anna_core::TrafficReport>();
}

#[test]
fn deserialize_impls_exist_for_config_types() {
    fn assert_deserialize<T: for<'de> serde::Deserialize<'de>>() {}
    assert_deserialize::<AnnaConfig>();
    assert_deserialize::<SearchShape>();
    assert_deserialize::<QueryWorkload>();
    assert_deserialize::<BatchWorkload>();
}

#[test]
fn send_sync_for_shared_state() {
    // C-SEND-SYNC: the types fleets of worker threads share.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AnnaConfig>();
    assert_send_sync::<BatchWorkload>();
    assert_send_sync::<anna_core::PHeap>();
    assert_send_sync::<anna_core::AreaPowerModel>();
}
