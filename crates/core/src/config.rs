//! Accelerator configuration — ANNA's design parameters (Sections III, V-A).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when an [`AnnaConfig`] is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateConfigError(String);

impl ValidateConfigError {
    /// Error for an index whose `k*` the hardware does not support.
    pub fn unsupported_kstar(kstar: usize) -> Self {
        Self(format!("ANNA supports k* of 16 and 256, index has {kstar}"))
    }

    /// Wraps an arbitrary validation message (used by other device-side
    /// checks, e.g. the 3-byte record id range).
    pub fn message(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for ValidateConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ANNA configuration: {}", self.0)
    }
}

impl std::error::Error for ValidateConfigError {}

/// ANNA design parameters.
///
/// Defaults match the paper's evaluated configuration (Section V-A):
/// `N_cu = 96`, `N_SCM = 16`, `N_u = 64`, 1 GHz clock, 64 GB/s memory,
/// 1 MB encoded-vector buffer, `k = 1000` top-k entries.
///
/// # Example
///
/// ```
/// use anna_core::AnnaConfig;
///
/// let cfg = AnnaConfig::paper();
/// assert_eq!(cfg.n_cu, 96);
/// assert_eq!(cfg.n_scm, 16);
/// assert_eq!(cfg.n_u, 64);
/// assert!((cfg.bytes_per_cycle() - 64.0).abs() < 1e-9); // 64 GB/s at 1 GHz
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnaConfig {
    /// Compute units in the CPM, `N_cu`.
    pub n_cu: usize,
    /// Number of Similarity Computation Modules, `N_SCM`.
    pub n_scm: usize,
    /// Lookup values sum-reduced per cycle per SCM, `N_u`.
    pub n_u: usize,
    /// Clock frequency in GHz (the paper synthesizes at 1 GHz).
    pub clock_ghz: f64,
    /// Main-memory bandwidth in GB/s (64 for a single ANNA; 75 per
    /// instance in the ANNA×12 comparison against the V100).
    pub mem_bandwidth_gbps: f64,
    /// Encoded-vector buffer capacity in bytes (1 MB in the evaluation;
    /// larger clusters are streamed in buffer-sized portions).
    pub encoded_buffer_bytes: usize,
    /// Top-k entries tracked per query (`k = 1000` in the paper).
    pub topk: usize,
    /// Bytes per top-k spill/fill record: 3 B vector id + 2 B score
    /// (Section IV-B).
    pub topk_record_bytes: usize,
    /// Outstanding 64 B entries in the Memory Access Interface
    /// (MSHR-like; Section III-B(5)).
    pub mai_entries: usize,
    /// Main-memory round-trip latency in cycles (with `mai_entries`, this
    /// bounds sustainable bandwidth by Little's law).
    pub mem_latency_cycles: f64,
}

impl AnnaConfig {
    /// The configuration evaluated in the paper.
    pub fn paper() -> Self {
        Self {
            n_cu: 96,
            n_scm: 16,
            n_u: 64,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 64.0,
            encoded_buffer_bytes: 1 << 20,
            topk: 1000,
            topk_record_bytes: 5,
            mai_entries: 128,
            mem_latency_cycles: 100.0,
        }
    }

    /// The per-instance configuration of the ANNA×12 scale-out comparison
    /// (each instance paired with a 75 GB/s memory system, Section V-B).
    pub fn paper_x12_instance() -> Self {
        Self {
            mem_bandwidth_gbps: 75.0,
            ..Self::paper()
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero or non-positive.
    pub fn validate(&self) -> Result<(), ValidateConfigError> {
        if self.n_cu == 0 || self.n_scm == 0 || self.n_u == 0 {
            return Err(ValidateConfigError("unit counts must be positive".into()));
        }
        if self.clock_ghz <= 0.0 || self.mem_bandwidth_gbps <= 0.0 {
            return Err(ValidateConfigError(
                "clock and bandwidth must be positive".into(),
            ));
        }
        if self.encoded_buffer_bytes == 0 {
            return Err(ValidateConfigError(
                "encoded buffer must be non-empty".into(),
            ));
        }
        if self.topk == 0 {
            return Err(ValidateConfigError("top-k must be positive".into()));
        }
        if self.topk_record_bytes == 0 {
            return Err(ValidateConfigError(
                "top-k record size must be positive".into(),
            ));
        }
        if self.mai_entries == 0 || self.mem_latency_cycles <= 0.0 {
            return Err(ValidateConfigError(
                "MAI entries and memory latency must be positive".into(),
            ));
        }
        Ok(())
    }

    /// DRAM bytes deliverable per clock cycle at the pin
    /// (`bandwidth [B/ns] / clock [cycles/ns]`).
    pub fn bytes_per_cycle(&self) -> f64 {
        let peak = self.mem_bandwidth_gbps / self.clock_ghz;
        // The MAI's outstanding-request capacity bounds what the pipeline
        // can actually sustain (Little's law; see `modules::mai`).
        let mai_limit = self.mai_entries as f64 * 64.0 / self.mem_latency_cycles;
        peak.min(mai_limit)
    }

    /// Converts a cycle count to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }

    /// The planner parameters implied by this configuration: `N_SCM`
    /// groups to allocate, and the top-k capacity / record size that price
    /// intermediate spill/fill units (Section IV-C).
    pub fn plan_params(&self) -> anna_plan::PlanParams {
        anna_plan::PlanParams {
            n_scm: self.n_scm,
            topk_capacity: self.topk,
            topk_record_bytes: self.topk_record_bytes,
        }
    }

    /// Codebook SRAM bytes for a given `D` and `k*`: `2·k*·D`
    /// (Section III-B; 64 KB for D=128, k*=256).
    pub fn codebook_sram_bytes(&self, d: usize, kstar: usize) -> usize {
        2 * kstar * d
    }

    /// Per-SCM lookup-table SRAM bytes for a given `M` and `k*`:
    /// `2·k*·M` (32 KB for M=64, k*=256), double-buffered in hardware.
    pub fn lut_sram_bytes(&self, m: usize, kstar: usize) -> usize {
        2 * kstar * m
    }
}

impl Default for AnnaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        assert!(AnnaConfig::paper().validate().is_ok());
        assert!(AnnaConfig::paper_x12_instance().validate().is_ok());
    }

    #[test]
    fn x12_instance_has_75_gbps() {
        assert_eq!(AnnaConfig::paper_x12_instance().mem_bandwidth_gbps, 75.0);
    }

    #[test]
    fn zero_units_rejected() {
        let cfg = AnnaConfig {
            n_u: 0,
            ..AnnaConfig::paper()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn negative_bandwidth_rejected() {
        let cfg = AnnaConfig {
            mem_bandwidth_gbps: -1.0,
            ..AnnaConfig::paper()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn sram_sizes_match_section_3b() {
        let cfg = AnnaConfig::paper();
        assert_eq!(cfg.codebook_sram_bytes(128, 256), 65536); // "64KB in our evaluation"
        assert_eq!(cfg.lut_sram_bytes(64, 256), 32768); // "32KB in our evaluation"
    }

    #[test]
    fn mai_limit_throttles_bandwidth() {
        // 32 entries at 100-cycle latency sustain only 20.48 B/cycle even
        // with a 64 GB/s DRAM behind them.
        let cfg = AnnaConfig {
            mai_entries: 32,
            ..AnnaConfig::paper()
        };
        assert!((cfg.bytes_per_cycle() - 20.48).abs() < 1e-9);
        // The paper default does not throttle.
        assert!((AnnaConfig::paper().bytes_per_cycle() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn zero_mai_entries_rejected() {
        let cfg = AnnaConfig {
            mai_entries: 0,
            ..AnnaConfig::paper()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn cycle_time_conversion() {
        let cfg = AnnaConfig::paper();
        assert!((cfg.cycles_to_seconds(1e9) - 1.0).abs() < 1e-12);
        let fast = AnnaConfig {
            clock_ghz: 2.0,
            ..cfg
        };
        assert!((fast.cycles_to_seconds(1e9) - 0.5).abs() < 1e-12);
        assert!((fast.bytes_per_cycle() - 32.0).abs() < 1e-12);
    }
}
