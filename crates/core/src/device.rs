//! A functional device emulator: ANNA executing the host protocol against
//! a byte-accurate DRAM image.
//!
//! Where [`crate::accel::Anna`] calls straight into the index structures,
//! [`Device`] goes the long way the silicon would: the host DMA-writes
//! centroids (as 2-byte floats), cluster metadata lines and packed codes
//! into device memory at the addresses planned by
//! [`crate::host::MemoryLayout`]; a search then *reads everything back out
//! of those bytes* — metadata line → code base/size → code bytes → unpack
//! → scan — and deposits 5-byte result records (3 B id + 2 B score,
//! Section IV-B) in the result region for the host to read.
//!
//! This catches a class of bugs the direct path cannot: wrong addresses,
//! overlapping regions, mis-sized records, or id overflow of the 3-byte
//! record format.

use anna_index::{IvfPqIndex, Lut};
use anna_quant::codes::PackedCodes;
use anna_quant::pq::PqCodebook;
use anna_vector::{f16, metric, Metric, Neighbor, VectorSet, F16};

use crate::config::{AnnaConfig, ValidateConfigError};
use crate::host::{MemoryLayout, LINE_BYTES};
use crate::modules::{Cpm, Efm, Scm};
use crate::pheap::PHeap;

/// Byte-addressable device DRAM.
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    bytes: Vec<u8>,
}

impl DeviceMemory {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: u64) -> Self {
        Self {
            bytes: vec![0u8; size as usize],
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Writes `data` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the write exceeds the memory size.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the read exceeds the memory size.
    pub fn read(&self, addr: u64, len: usize) -> &[u8] {
        let a = addr as usize;
        &self.bytes[a..a + len]
    }
}

/// The emulated device: DRAM image + on-chip state.
#[derive(Debug)]
pub struct Device {
    cfg: AnnaConfig,
    mem: DeviceMemory,
    layout: MemoryLayout,
    /// On-chip codebook SRAM contents (loaded by the host).
    codebook: PqCodebook,
    metric: Metric,
    num_clusters: usize,
    dim: usize,
}

impl Device {
    /// Maximum id representable in a 3-byte result record.
    pub const MAX_RECORD_ID: u64 = (1 << 24) - 1;

    /// Boots a device, plans the memory layout for `index`, and performs
    /// the host's model upload (centroids as f16, metadata lines, packed
    /// codes, codebook → SRAM).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or any database id
    /// exceeds the 3-byte record range (the record format would silently
    /// corrupt results otherwise).
    pub fn boot(
        cfg: AnnaConfig,
        index: &IvfPqIndex,
        max_batch: usize,
        w: usize,
    ) -> Result<Self, ValidateConfigError> {
        cfg.validate()?;
        let kstar = index.codebook().kstar();
        if kstar != 16 && kstar != 256 {
            return Err(ValidateConfigError::unsupported_kstar(kstar));
        }
        for c in 0..index.num_clusters() {
            if index
                .cluster(c)
                .ids
                .iter()
                .any(|&id| id > Self::MAX_RECORD_ID)
            {
                return Err(ValidateConfigError::id_overflow());
            }
        }

        let layout = MemoryLayout::plan(&cfg, index, max_batch, w);
        let mut mem = DeviceMemory::new(layout.results.end());

        // Centroids, 2-byte elements, row-major.
        let mut addr = layout.centroids.base;
        for row in index.centroids().iter() {
            for &v in row {
                mem.write(addr, &F16::from_f32(v).to_bits().to_le_bytes());
                addr += 2;
            }
        }

        // Cluster metadata: one 64 B line per cluster, holding the code
        // base address (8 B) and vector count (8 B).
        for (i, m) in layout.meta.iter().enumerate() {
            let line = layout.cluster_meta.base + LINE_BYTES * i as u64;
            mem.write(line, &m.code_base.to_le_bytes());
            mem.write(line + 8, &m.num_vectors.to_le_bytes());
        }

        // Packed codes, and cluster ids alongside (the emulator keeps ids
        // in the code region as the real layout would via a parallel
        // table; here they are appended per record in a shadow table —
        // see `read_cluster`).
        for (i, m) in layout.meta.iter().enumerate() {
            mem.write(m.code_base, index.cluster(i).codes.bytes());
        }

        Ok(Self {
            cfg,
            mem,
            layout,
            codebook: index.codebook().clone(),
            metric: index.metric(),
            num_clusters: index.num_clusters(),
            dim: index.dim(),
        })
    }

    /// The planned layout (for host-side inspection).
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Direct access to the DRAM image (tests poke it to emulate
    /// corruption).
    pub fn memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.mem
    }

    /// Reads centroid `i` back from DRAM (f16 → f32).
    fn read_centroid(&self, i: usize) -> Vec<f32> {
        let base = self.layout.centroids.base + (2 * self.dim * i) as u64;
        self.mem
            .read(base, 2 * self.dim)
            .chunks_exact(2)
            .map(|b| F16::from_bits(u16::from_le_bytes([b[0], b[1]])).to_f32())
            .collect()
    }

    /// Reads a cluster's metadata line and codes back from DRAM.
    fn read_cluster(&self, i: usize, ids: &[u64]) -> PackedCodes {
        let line = self.layout.cluster_meta.base + LINE_BYTES * i as u64;
        let code_base = u64::from_le_bytes(self.mem.read(line, 8).try_into().expect("8 bytes"));
        let n =
            u64::from_le_bytes(self.mem.read(line + 8, 8).try_into().expect("8 bytes")) as usize;
        assert_eq!(n, ids.len(), "metadata count diverged from id table");
        let width = if self.codebook.kstar() <= 16 {
            anna_quant::codes::CodeWidth::U4
        } else {
            anna_quant::codes::CodeWidth::U8
        };
        let bytes_per_vec = width.vector_bytes(self.codebook.m());
        let data = self.mem.read(code_base, n * bytes_per_vec).to_vec();
        PackedCodes::from_bytes(self.codebook.m(), width, n, data)
    }

    /// Runs one query through the device: filter on f16 centroids read
    /// from DRAM, scan codes read from DRAM, write 5-byte records into the
    /// result region, and return the host-decoded records.
    ///
    /// `id_tables` supplies each cluster's id list (the deployment's
    /// id-table region, passed by reference to avoid duplicating it in the
    /// emulated DRAM).
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != dim` or `k` exceeds the configured top-k.
    pub fn search(&mut self, q: &[f32], w: usize, k: usize, index: &IvfPqIndex) -> Vec<Neighbor> {
        assert_eq!(q.len(), self.dim, "query dimension mismatch");
        assert!(k > 0 && k <= self.cfg.topk, "k out of range");

        // Step 1: filter on centroids read back from device memory.
        let mut cpm = Cpm::new(self.cfg.n_cu);
        let mut centroids = VectorSet::zeros(self.dim, 0);
        for i in 0..self.num_clusters {
            centroids.push(&self.read_centroid(i));
        }
        let selected = cpm.filter_clusters(q, &centroids, self.metric, w);

        // Step 2/3: LUTs from the on-chip codebook; codes from DRAM.
        let ip_base = match self.metric {
            Metric::InnerProduct => Some(cpm.build_ip_lut(q, &self.codebook)),
            Metric::L2 => None,
        };
        let mut efm = Efm::new(self.cfg.encoded_buffer_bytes);
        let mut scm = Scm::new(self.cfg.n_u, k);
        for &cid in &selected {
            let ids = &index.cluster(cid).ids;
            let codes = self.read_cluster(cid, ids);
            let lut: Lut = match self.metric {
                Metric::InnerProduct => {
                    let bias = f16::round_trip(metric::dot(q, centroids.row(cid)));
                    ip_base.as_ref().expect("built").with_bias(bias)
                }
                Metric::L2 => cpm.build_l2_lut(q, centroids.row(cid), &self.codebook),
            };
            let cluster = anna_index::ivf::Cluster {
                ids: ids.clone(),
                codes,
            };
            for (start, rows) in efm.fetch(&cluster) {
                scm.scan(&rows, &cluster.ids[start..start + rows.len()], &lut);
            }
        }

        // Write result records (3 B id + 2 B f16 score) and read them back
        // as the host would.
        let results = scm.drain_results();
        let mut addr = self.layout.results.base;
        for n in &results {
            let id = n.id.to_le_bytes();
            self.mem.write(addr, &id[..3]);
            self.mem
                .write(addr + 3, &F16::from_f32(n.score).to_bits().to_le_bytes());
            addr += self.cfg.topk_record_bytes as u64;
        }
        let mut out = Vec::with_capacity(results.len());
        let mut addr = self.layout.results.base;
        for _ in 0..results.len() {
            out.push(self.read_record(addr));
            addr += self.cfg.topk_record_bytes as u64;
        }
        out
    }

    fn write_record(&mut self, addr: u64, n: &Neighbor) {
        let id = n.id.to_le_bytes();
        self.mem.write(addr, &id[..3]);
        self.mem
            .write(addr + 3, &F16::from_f32(n.score).to_bits().to_le_bytes());
    }

    fn read_record(&self, addr: u64) -> Neighbor {
        let idb = self.mem.read(addr, 3);
        let id = u64::from(idb[0]) | u64::from(idb[1]) << 8 | u64::from(idb[2]) << 16;
        let sb = self.mem.read(addr + 3, 2);
        let score = F16::from_bits(u16::from_le_bytes([sb[0], sb[1]])).to_f32();
        Neighbor::new(id, score)
    }

    /// Spill-slot base address for (query, partition): each query owns
    /// `N_SCM` record sets sized for the configured top-k in the spill
    /// region.
    fn spill_slot(&self, query: usize, part: usize) -> u64 {
        let rec = self.cfg.topk_record_bytes as u64;
        self.layout.topk_spill.base
            + (query as u64 * self.cfg.n_scm as u64 + part as u64) * self.cfg.topk as u64 * rec
    }

    /// Runs a batch under the memory-traffic-optimized, cluster-major
    /// schedule, with intermediate top-k state spilled to and filled from
    /// the DRAM spill region as real 5-byte records (Section IV-A's
    /// "intermediate top-k results need to be stored in memory").
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch, `k` is out of range, or the batch
    /// exceeds the booted layout's capacity.
    pub fn search_batch(
        &mut self,
        queries: &VectorSet,
        w: usize,
        k: usize,
        alloc: anna_plan::ScmAllocation,
        index: &IvfPqIndex,
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.dim(), self.dim, "query dimension mismatch");
        assert!(k > 0 && k <= self.cfg.topk, "k out of range");
        let b = queries.len();

        // Plan with CPM filtering over the DRAM centroid image.
        let mut cpm = Cpm::new(self.cfg.n_cu);
        let mut centroids = VectorSet::zeros(self.dim, 0);
        for i in 0..self.num_clusters {
            centroids.push(&self.read_centroid(i));
        }
        let workload = crate::timing::BatchWorkload {
            shape: crate::timing::SearchShape {
                d: self.dim,
                m: self.codebook.m(),
                kstar: self.codebook.kstar(),
                metric: self.metric,
                num_clusters: self.num_clusters,
                k,
            },
            cluster_sizes: (0..self.num_clusters)
                .map(|i| index.cluster(i).len())
                .collect(),
            visits: queries
                .iter()
                .map(|q| cpm.filter_clusters(q, &centroids, self.metric, w))
                .collect(),
        };
        let plan = anna_plan::plan(&self.cfg.plan_params(), &workload, alloc);
        let g = plan.scm_per_query;
        let rec = self.cfg.topk_record_bytes;

        let ip_bases: Option<Vec<Lut>> = match self.metric {
            Metric::InnerProduct => Some(
                queries
                    .iter()
                    .map(|q| cpm.build_ip_lut(q, &self.codebook))
                    .collect(),
            ),
            Metric::L2 => None,
        };

        // Number of records currently spilled per (query, partition).
        let mut spilled_len = vec![vec![0usize; g]; b];
        let mut has_state = vec![false; b];
        let mut efm = Efm::new(self.cfg.encoded_buffer_bytes);

        for round in &plan.rounds {
            let cluster = {
                let ids = &index.cluster(round.cluster).ids;
                anna_index::ivf::Cluster {
                    ids: ids.clone(),
                    codes: self.read_cluster(round.cluster, ids),
                }
            };
            let len = cluster.len();
            let chunk = len.div_ceil(g).max(1);
            // One EFM fetch per cluster buffering (unpacked rows reused by
            // every query and partition of the round).
            let mut all_rows: Vec<Vec<u8>> = Vec::with_capacity(len);
            for (_, seg_rows) in efm.fetch(&cluster) {
                all_rows.extend(seg_rows);
            }
            for &qi in &round.queries {
                let q = queries.row(qi);
                let lut = match self.metric {
                    Metric::InnerProduct => {
                        let bias = f16::round_trip(metric::dot(q, centroids.row(round.cluster)));
                        ip_bases.as_ref().expect("built")[qi].with_bias(bias)
                    }
                    Metric::L2 => cpm.build_l2_lut(q, centroids.row(round.cluster), &self.codebook),
                };
                #[allow(clippy::needless_range_loop)]
                for part in 0..g {
                    let lo = (part * chunk).min(len);
                    let hi = ((part + 1) * chunk).min(len);
                    // Fill from the DRAM spill slot.
                    let mut scm = Scm::new(self.cfg.n_u, k);
                    if has_state[qi] {
                        let base = self.spill_slot(qi, part);
                        let records: Vec<Neighbor> = (0..spilled_len[qi][part])
                            .map(|i| self.read_record(base + (i * rec) as u64))
                            .collect();
                        scm.fill(&records, rec);
                    }
                    if lo < hi {
                        scm.scan(&all_rows[lo..hi], &cluster.ids[lo..hi], &lut);
                    }
                    // Spill back to DRAM.
                    let records = scm.spill(rec);
                    let base = self.spill_slot(qi, part);
                    for (i, n) in records.iter().enumerate() {
                        self.write_record(base + (i * rec) as u64, n);
                    }
                    spilled_len[qi][part] = records.len();
                }
                has_state[qi] = true;
            }
        }

        // Final merge per query from the spill region, then result store.
        (0..b)
            .map(|qi| {
                let mut merged = PHeap::new(k);
                #[allow(clippy::needless_range_loop)]
                for part in 0..g {
                    let base = self.spill_slot(qi, part);
                    for i in 0..spilled_len[qi][part] {
                        let n = self.read_record(base + (i * rec) as u64);
                        merged.offer(n.id, n.score);
                    }
                }
                let out = merged.drain_sorted();
                let mut addr = self.layout.results.base + (qi * self.cfg.topk * rec) as u64;
                for n in &out {
                    let n = *n;
                    self.write_record(addr, &n);
                    addr += rec as u64;
                }
                out
            })
            .collect()
    }
}

/// Extension: result-record id overflow error.
impl ValidateConfigError {
    /// Error for a database whose ids exceed the 3-byte record format.
    pub fn id_overflow() -> Self {
        Self::message("database ids exceed the 3-byte top-k record format (2^24-1)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::Anna;
    use anna_index::IvfPqConfig;

    fn setup(metric: Metric) -> (VectorSet, IvfPqIndex) {
        let data = VectorSet::from_fn(8, 600, |r, c| {
            let x = (r as u64)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(c as u64 * 31);
            ((x >> 20) % 97) as f32 * 0.5
        });
        let index = IvfPqIndex::build(
            &data,
            &IvfPqConfig {
                metric,
                num_clusters: 8,
                m: 4,
                kstar: 16,
                ..IvfPqConfig::default()
            },
        );
        (data, index)
    }

    #[test]
    fn device_matches_direct_accelerator() {
        for metric in [Metric::L2, Metric::InnerProduct] {
            let (data, index) = setup(metric);
            let mut dev = Device::boot(AnnaConfig::paper(), &index, 8, 4).unwrap();
            let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
            for row in [1usize, 100, 599] {
                let via_mem = dev.search(data.row(row), 4, 6, &index);
                let (direct, _) = anna.search(data.row(row), 4, 6);
                let a: Vec<u64> = via_mem.iter().map(|n| n.id).collect();
                let b: Vec<u64> = direct.iter().map(|n| n.id).collect();
                // The device filter sees f16-rounded centroids, which can
                // flip near-tied cluster picks; the score sequence must
                // still agree within f16 tolerance.
                if a != b {
                    for (x, y) in via_mem.iter().zip(&direct) {
                        assert!(
                            (x.score - y.score).abs() <= 0.02 * (1.0 + y.score.abs()),
                            "{metric} row {row}: {x:?} vs {y:?}"
                        );
                    }
                } else {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn results_round_trip_through_record_format() {
        let (data, index) = setup(Metric::L2);
        let mut dev = Device::boot(AnnaConfig::paper(), &index, 8, 4).unwrap();
        let res = dev.search(data.row(0), 4, 5, &index);
        assert_eq!(res.len(), 5);
        for n in &res {
            assert!(n.id <= Device::MAX_RECORD_ID);
            // Scores must be exactly f16-representable (they came back out
            // of the 2-byte record).
            assert_eq!(n.score, f16::round_trip(n.score));
        }
    }

    #[test]
    fn corrupting_code_memory_changes_results() {
        // The search genuinely reads DRAM: flipping code bytes must be
        // visible (scores change or order shifts).
        let (data, index) = setup(Metric::L2);
        let cfg = AnnaConfig::paper();
        let mut clean = Device::boot(cfg.clone(), &index, 8, 4).unwrap();
        let baseline = clean.search(data.row(7), 8, 10, &index);

        let mut dirty = Device::boot(cfg, &index, 8, 4).unwrap();
        let base = dirty.layout().codes.base;
        let len = dirty.layout().codes.bytes as usize;
        for off in (0..len).step_by(3) {
            let addr = base + off as u64;
            let b = dirty.memory_mut().read(addr, 1)[0] ^ 0xFF;
            dirty.memory_mut().write(addr, &[b]);
        }
        let corrupted = dirty.search(data.row(7), 8, 10, &index);
        assert_ne!(
            baseline, corrupted,
            "corrupted codes did not affect the search"
        );
    }

    #[test]
    fn batched_device_search_matches_accelerator() {
        use anna_plan::ScmAllocation;
        let (data, index) = setup(Metric::L2);
        let cfg = AnnaConfig::paper();
        let mut dev = Device::boot(cfg.clone(), &index, 16, 4).unwrap();
        let anna = Anna::new(cfg, &index).unwrap();
        let queries = data.gather(&[0, 33, 210, 599]);
        let alloc = ScmAllocation::IntraQuery { scm_per_query: 4 };
        let via_mem = dev.search_batch(&queries, 4, 6, alloc, &index);
        let (direct, _) = anna.search_batch(&queries, 4, 6, alloc);
        for (qi, (a, b)) in via_mem.iter().zip(&direct).enumerate() {
            let av: Vec<u64> = a.iter().map(|n| n.id).collect();
            let bv: Vec<u64> = b.iter().map(|n| n.id).collect();
            // f16 centroid rounding may flip near-tied cluster picks;
            // fall back to score comparison in that case.
            if av != bv {
                for (x, y) in a.iter().zip(b) {
                    assert!(
                        (x.score - y.score).abs() <= 0.02 * (1.0 + y.score.abs()),
                        "query {qi}: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_device_spills_real_records() {
        use anna_plan::ScmAllocation;
        let (data, index) = setup(Metric::InnerProduct);
        let cfg = AnnaConfig::paper();
        let mut dev = Device::boot(cfg, &index, 16, 6).unwrap();
        let queries = data.gather(&(0..12).collect::<Vec<_>>());
        let res = dev.search_batch(&queries, 6, 5, ScmAllocation::Auto, &index);
        assert_eq!(res.len(), 12);
        // The spill region must contain non-zero record bytes after a
        // multi-round run.
        let base = dev.layout().topk_spill.base;
        let some = dev.memory_mut().read(base, 64);
        assert!(some.iter().any(|&b| b != 0), "spill region never written");
        for r in &res {
            assert_eq!(r.len(), 5);
        }
    }

    #[test]
    fn boot_rejects_oversized_ids() {
        use anna_index::ivf::Cluster;
        use anna_quant::codes::{CodeWidth, PackedCodes};
        use anna_quant::kmeans::KMeans;
        // Hand-build an index whose id exceeds 2^24 - 1.
        let (_, index) = setup(Metric::L2);
        let mut codes = PackedCodes::new(4, CodeWidth::U4);
        codes.push(&[0, 0, 0, 0]);
        let mut clusters: Vec<Cluster> = (0..index.num_clusters())
            .map(|i| index.cluster(i).clone())
            .collect();
        clusters[0] = Cluster {
            ids: vec![1 << 24],
            codes,
        };
        let bad = IvfPqIndex::from_parts(
            Metric::L2,
            KMeans::from_centroids(index.centroids().clone()),
            index.codebook().clone(),
            clusters,
        );
        assert!(Device::boot(AnnaConfig::paper(), &bad, 4, 2).is_err());
    }
}
