//! Memory Access Interface (Section III-B(5)).
//!
//! "MAI takes read requests from memory readers and issues memory read
//! requests to the memory controller. When issuing a memory request, it
//! reserves one of its 64B buffers ... In general, this is quite similar
//! to the MSHR in CPUs."
//!
//! The timing-relevant consequence of an MSHR-like structure is Little's
//! law: with `E` outstanding 64 B entries and a memory latency of `L`
//! cycles, the sustainable request throughput is `E·64/L` bytes per cycle
//! regardless of the DRAM's peak — the effective bandwidth is the minimum
//! of the two. [`Mai::effective_bytes_per_cycle`] feeds that bound to the
//! timing engines.

use serde::Serialize;

/// MAI activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct MaiStats {
    /// 64 B lines requested.
    pub lines: u64,
    /// Bytes transferred (line-granular: requests round up).
    pub bytes: u64,
    /// Write requests buffered.
    pub writes: u64,
}

/// The MAI model.
#[derive(Debug, Clone)]
pub struct Mai {
    entries: usize,
    line_bytes: usize,
    latency_cycles: f64,
    stats: MaiStats,
}

impl Mai {
    /// Creates an MAI with `entries` outstanding 64 B buffers and the
    /// given memory round-trip latency.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0` or `latency_cycles <= 0`.
    pub fn new(entries: usize, latency_cycles: f64) -> Self {
        assert!(entries > 0, "MAI needs at least one entry");
        assert!(latency_cycles > 0.0, "latency must be positive");
        Self {
            entries,
            line_bytes: 64,
            latency_cycles,
            stats: MaiStats::default(),
        }
    }

    /// The paper-scale default: enough entries to cover a 100-cycle DRAM
    /// latency at 64 B/cycle (128 × 64 B ≈ 8 KB in flight).
    pub fn paper() -> Self {
        Self::new(128, 100.0)
    }

    /// Outstanding entries.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Activity so far.
    pub fn stats(&self) -> MaiStats {
        self.stats
    }

    /// The bandwidth this MAI can sustain by Little's law, in bytes per
    /// cycle.
    pub fn sustainable_bytes_per_cycle(&self) -> f64 {
        self.entries as f64 * self.line_bytes as f64 / self.latency_cycles
    }

    /// The effective bytes-per-cycle the memory system delivers: the
    /// minimum of the DRAM peak and the MAI's sustainable rate.
    pub fn effective_bytes_per_cycle(&self, peak_bytes_per_cycle: f64) -> f64 {
        peak_bytes_per_cycle.min(self.sustainable_bytes_per_cycle())
    }

    /// Accounts a read of `bytes` (rounded up to 64 B lines, as the
    /// hardware fetches).
    pub fn read(&mut self, bytes: u64) {
        let lines = bytes.div_ceil(self.line_bytes as u64);
        self.stats.lines += lines;
        self.stats.bytes += lines * self.line_bytes as u64;
    }

    /// Accounts a buffered write of `bytes`.
    pub fn write(&mut self, bytes: u64) {
        let lines = bytes.div_ceil(self.line_bytes as u64);
        self.stats.lines += lines;
        self.stats.bytes += lines * self.line_bytes as u64;
        self.stats.writes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mai_covers_peak_bandwidth() {
        // 128 entries x 64 B / 100 cycles = 81.9 B/cycle > the 64 B/cycle
        // peak, so the default never throttles (by design).
        let mai = Mai::paper();
        assert!(mai.sustainable_bytes_per_cycle() > 64.0);
        assert_eq!(mai.effective_bytes_per_cycle(64.0), 64.0);
    }

    #[test]
    fn few_entries_throttle_bandwidth() {
        // 32 entries at 100-cycle latency sustain only 20.5 B/cycle.
        let mai = Mai::new(32, 100.0);
        assert!((mai.sustainable_bytes_per_cycle() - 20.48).abs() < 0.01);
        assert!((mai.effective_bytes_per_cycle(64.0) - 20.48).abs() < 0.01);
    }

    #[test]
    fn reads_are_line_granular() {
        let mut mai = Mai::paper();
        mai.read(1);
        mai.read(65);
        assert_eq!(mai.stats().lines, 3);
        assert_eq!(mai.stats().bytes, 192);
    }

    #[test]
    fn writes_counted_separately() {
        let mut mai = Mai::paper();
        mai.write(128);
        assert_eq!(mai.stats().writes, 1);
        assert_eq!(mai.stats().lines, 2);
    }
}
