//! Functional + metered models of ANNA's hardware modules
//! (Section III-B).
//!
//! Each module executes the real datapath work (so search results come out
//! of the same structures the hardware would use) while counting the
//! cycles and operations its silicon counterpart would spend; the
//! [`crate::accel::Anna`] facade composes them, and their cycle formulas
//! are the same ones the timing engines integrate.
//!
//! * [`cpm::Cpm`] — Cluster/Codebook Processing Module: cluster filtering
//!   (Mode 1), residual computation (Mode 2), lookup-table construction
//!   (Mode 3).
//! * [`efm::Efm`] — Encoded Vector Fetch Module: cluster metadata + code
//!   fetch, sub-byte unpacking, double-buffered segmentation.
//! * [`scm::Scm`] — Similarity Computation Module: the `N_u`-wide adder
//!   tree over LUT reads, feeding a P-heap top-k unit.
//! * [`mai::Mai`] — Memory Access Interface: MSHR-like outstanding-request
//!   tracking that bounds effective bandwidth.
//! * [`crossbar::Crossbar`] — the configurable buffer↔SCM switch of the
//!   traffic optimization (broadcast for inter-query parallelism,
//!   partitioned stripes for intra-query).

pub mod cpm;
pub mod crossbar;
pub mod efm;
pub mod mai;
pub mod scm;

pub use cpm::Cpm;
pub use crossbar::Crossbar;
pub use efm::Efm;
pub use mai::Mai;
pub use scm::Scm;
