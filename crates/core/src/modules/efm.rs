//! Encoded Vector Fetch Module (Section III-B(2)).
//!
//! Fetches a selected cluster's metadata and packed codes from main
//! memory, unpacks the sub-byte identifiers with its shifter hardware, and
//! stages them in the (double-buffered) encoded vector buffer. Clusters
//! larger than the buffer are streamed in buffer-sized portions.

use anna_index::ivf::Cluster;
use serde::Serialize;

/// EFM activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct EfmStats {
    /// Clusters fetched.
    pub clusters_fetched: u64,
    /// Code bytes read from memory.
    pub code_bytes: u64,
    /// Metadata bytes read (one 64 B line per cluster).
    pub meta_bytes: u64,
    /// Identifiers unpacked.
    pub identifiers_unpacked: u64,
    /// Buffer-sized segments streamed (1 for clusters that fit).
    pub segments: u64,
}

/// The EFM: fetch, unpack and buffer encoded vectors.
#[derive(Debug, Clone)]
pub struct Efm {
    buffer_bytes: usize,
    stats: EfmStats,
}

impl Efm {
    /// Creates an EFM with the given encoded-vector buffer capacity.
    ///
    /// # Panics
    ///
    /// Panics if `buffer_bytes == 0`.
    pub fn new(buffer_bytes: usize) -> Self {
        assert!(buffer_bytes > 0, "EFM buffer must be non-empty");
        Self {
            buffer_bytes,
            stats: EfmStats::default(),
        }
    }

    /// Activity so far.
    pub fn stats(&self) -> EfmStats {
        self.stats
    }

    /// Fetches a cluster: accounts the metadata line and code bytes, and
    /// returns the unpacked identifier rows segment by segment (the
    /// double-buffer streaming of Section III-B: "a contiguous portion of
    /// the cluster's data is first fetched, and the next contiguous
    /// portion ... while the current buffer is utilized").
    ///
    /// Each segment is a `(start_vector, rows)` pair where `rows` holds
    /// the unpacked `M`-identifier rows.
    pub fn fetch(&mut self, cluster: &Cluster) -> Vec<(usize, Vec<Vec<u8>>)> {
        self.stats.clusters_fetched += 1;
        self.stats.meta_bytes += 64;
        self.stats.code_bytes += cluster.encoded_bytes();

        let bytes_per_vec = cluster.codes.vector_bytes().max(1);
        let vecs_per_segment = (self.buffer_bytes / bytes_per_vec).max(1);
        let mut segments = Vec::new();
        let mut start = 0;
        while start < cluster.len() {
            let end = (start + vecs_per_segment).min(cluster.len());
            let mut rows = Vec::with_capacity(end - start);
            for v in start..end {
                let mut row = vec![0u8; cluster.codes.m()];
                cluster.codes.read_into(v, &mut row);
                self.stats.identifiers_unpacked += row.len() as u64;
                rows.push(row);
            }
            segments.push((start, rows));
            self.stats.segments += 1;
            start = end;
        }
        segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_quant::codes::{CodeWidth, PackedCodes};

    fn cluster(n: usize, m: usize) -> Cluster {
        let mut codes = PackedCodes::new(m, CodeWidth::U4);
        for i in 0..n {
            let row: Vec<u8> = (0..m).map(|j| ((i + j) % 16) as u8).collect();
            codes.push(&row);
        }
        Cluster {
            ids: (0..n as u64).collect(),
            codes,
        }
    }

    #[test]
    fn small_cluster_is_one_segment() {
        let mut efm = Efm::new(1 << 20);
        let cl = cluster(100, 8);
        let segs = efm.fetch(&cl);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].1.len(), 100);
        assert_eq!(efm.stats().segments, 1);
        assert_eq!(efm.stats().code_bytes, 100 * 4); // 8 nibbles = 4 B
        assert_eq!(efm.stats().meta_bytes, 64);
    }

    #[test]
    fn oversized_cluster_streams_in_portions() {
        // Buffer fits 16 vectors of 4 bytes.
        let mut efm = Efm::new(64);
        let cl = cluster(50, 8);
        let segs = efm.fetch(&cl);
        assert_eq!(segs.len(), 4); // 16+16+16+2
        assert_eq!(segs[3].0, 48);
        assert_eq!(segs[3].1.len(), 2);
        assert_eq!(efm.stats().segments, 4);
    }

    #[test]
    fn unpacked_rows_match_direct_reads() {
        let mut efm = Efm::new(1 << 10);
        let cl = cluster(20, 6);
        let segs = efm.fetch(&cl);
        for (start, rows) in segs {
            for (off, row) in rows.iter().enumerate() {
                assert_eq!(row, &cl.codes.get(start + off));
            }
        }
        assert_eq!(efm.stats().identifiers_unpacked, 20 * 6);
    }
}
