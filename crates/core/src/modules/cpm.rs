//! Cluster/Codebook Processing Module (Section III-B(1)).
//!
//! `N_cu` compute units shared by three modes:
//! 1. **cluster filtering** — broadcast one query element per cycle to all
//!    units, each accumulating a different centroid's partial similarity
//!    (`D·|C|/N_cu` cycles per query);
//! 2. **residual computation** — element-wise `q − c⁽ˢ⁾` at `N_cu`
//!    elements per cycle (`D/N_cu` cycles);
//! 3. **LUT construction** — one unit fills one table; `D·k*/N_cu` cycles
//!    for a query's full set of `M` tables.

use anna_index::{Lut, LutPrecision};
use anna_quant::pq::PqCodebook;
use anna_vector::{f16, metric, Metric, VectorSet};
use serde::Serialize;

use crate::pheap::PHeap;

/// Activity counters for the CPM (consumed by the energy model and
/// asserted against the analytic engine in tests).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct CpmStats {
    /// Cycles spent across all modes.
    pub cycles: f64,
    /// Multiply-add (or subtract-square-add) operations issued.
    pub madds: u64,
    /// Lookup tables constructed.
    pub luts_built: u64,
}

/// The CPM: compute units plus a top-|W| selection unit for filtering.
#[derive(Debug, Clone)]
pub struct Cpm {
    n_cu: usize,
    stats: CpmStats,
}

impl Cpm {
    /// Creates a CPM with `n_cu` compute units.
    ///
    /// # Panics
    ///
    /// Panics if `n_cu == 0`.
    pub fn new(n_cu: usize) -> Self {
        assert!(n_cu > 0, "CPM needs at least one compute unit");
        Self {
            n_cu,
            stats: CpmStats::default(),
        }
    }

    /// Activity so far.
    pub fn stats(&self) -> CpmStats {
        self.stats
    }

    /// Mode 1: scores the query against every centroid (streamed) and
    /// returns the `w` most similar cluster ids, best first, selected by
    /// the hardware top-k unit (f16 score compare — ties therefore break
    /// exactly as the silicon would).
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch or `w == 0`.
    pub fn filter_clusters(
        &mut self,
        q: &[f32],
        centroids: &VectorSet,
        metric: Metric,
        w: usize,
    ) -> Vec<usize> {
        assert_eq!(
            q.len(),
            centroids.dim(),
            "query/centroid dimension mismatch"
        );
        assert!(w > 0, "w must be positive");
        let d = centroids.dim();
        let c = centroids.len();
        self.stats.cycles += d as f64 * c as f64 / self.n_cu as f64;
        self.stats.madds += (d * c) as u64;

        let mut top = PHeap::new(w.min(c));
        for (i, cv) in centroids.iter().enumerate() {
            top.offer(i as u64, metric.similarity(q, cv));
        }
        top.drain_sorted()
            .into_iter()
            .map(|n| n.id as usize)
            .collect()
    }

    /// Mode 2: the residual `q − c⁽ˢ⁾`, rounded through the 2-byte on-chip
    /// format on store.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn residual(&mut self, q: &[f32], centroid: &[f32]) -> Vec<f32> {
        assert_eq!(q.len(), centroid.len());
        self.stats.cycles += q.len() as f64 / self.n_cu as f64;
        self.stats.madds += q.len() as u64;
        let mut r = metric::sub(q, centroid);
        f16::round_trip_slice(&mut r);
        r
    }

    /// Mode 3: builds a query's lookup tables (inner product: the
    /// cluster-invariant `q_i·B_i[·]` table; the caller re-biases per
    /// cluster).
    pub fn build_ip_lut(&mut self, q: &[f32], book: &PqCodebook) -> Lut {
        self.charge_lut(book);
        Lut::build_ip(q, book, LutPrecision::F16)
    }

    /// Mode 3 for L2: builds the cluster-specific table
    /// `-‖(q_i − c_i) − B_i[·]‖²` (internally runs Mode 2 first, as the
    /// hardware does).
    pub fn build_l2_lut(&mut self, q: &[f32], centroid: &[f32], book: &PqCodebook) -> Lut {
        // The residual pass (Mode 2) precedes the fill.
        self.stats.cycles += q.len() as f64 / self.n_cu as f64;
        self.stats.madds += q.len() as u64;
        self.charge_lut(book);
        Lut::build_l2(q, centroid, book, LutPrecision::F16)
    }

    fn charge_lut(&mut self, book: &PqCodebook) {
        self.stats.cycles += (book.dim() * book.kstar()) as f64 / self.n_cu as f64;
        self.stats.madds += (book.dim() * book.kstar()) as u64;
        self.stats.luts_built += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_quant::pq::PqConfig;

    fn centroids() -> VectorSet {
        VectorSet::from_fn(4, 10, |r, _| r as f32)
    }

    #[test]
    fn filtering_selects_nearest_and_charges_cycles() {
        let mut cpm = Cpm::new(96);
        let c = centroids();
        let picked = cpm.filter_clusters(&[3.2, 3.2, 3.2, 3.2], &c, Metric::L2, 3);
        assert_eq!(picked[0], 3);
        assert!(picked.contains(&4));
        // D·|C|/N_cu = 4·10/96.
        assert!((cpm.stats().cycles - 40.0 / 96.0).abs() < 1e-9);
        assert_eq!(cpm.stats().madds, 40);
    }

    #[test]
    fn residual_matches_subtraction_with_f16_store() {
        let mut cpm = Cpm::new(96);
        let r = cpm.residual(&[1.0, 2.0], &[0.5, 0.5]);
        assert_eq!(r, vec![0.5, 1.5]);
    }

    #[test]
    fn lut_costs_match_mode3_formula() {
        let data = VectorSet::from_fn(8, 64, |r, c| ((r * 3 + c) % 7) as f32);
        let book = PqCodebook::train(
            &data,
            &PqConfig {
                m: 4,
                kstar: 16,
                iters: 3,
                seed: 0,
            },
        );
        let mut cpm = Cpm::new(96);
        let _ = cpm.build_ip_lut(&[1.0; 8], &book);
        // D·k*/N_cu = 8·16/96.
        assert!((cpm.stats().cycles - 128.0 / 96.0).abs() < 1e-9);
        assert_eq!(cpm.stats().luts_built, 1);
    }

    #[test]
    fn l2_lut_includes_residual_pass() {
        let data = VectorSet::from_fn(8, 64, |r, c| ((r * 3 + c) % 7) as f32);
        let book = PqCodebook::train(
            &data,
            &PqConfig {
                m: 4,
                kstar: 16,
                iters: 3,
                seed: 0,
            },
        );
        let mut cpm = Cpm::new(96);
        let _ = cpm.build_l2_lut(&[1.0; 8], &[0.0; 8], &book);
        // D/N_cu + D·k*/N_cu.
        assert!((cpm.stats().cycles - (8.0 + 128.0) / 96.0).abs() < 1e-9);
    }

    #[test]
    fn filter_w_clamped_to_cluster_count() {
        let mut cpm = Cpm::new(4);
        let picked = cpm.filter_clusters(&[0.0; 4], &centroids(), Metric::L2, 99);
        assert_eq!(picked.len(), 10);
    }
}
