//! Similarity Computation Module (Section III-B(3)).
//!
//! Reads `N_u` identifiers per cycle from the encoded vector buffer, uses
//! them to address the lookup tables, sum-reduces the `N_u` values through
//! a pipelined adder tree, adds the inner-product bias where applicable,
//! and feeds the result to its P-heap top-k unit. One vector costs
//! `⌈M/N_u⌉` cycles.

use anna_index::Lut;
use anna_vector::Neighbor;
use serde::Serialize;

use crate::pheap::PHeap;

/// SCM activity counters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct ScmStats {
    /// Cycles spent scanning.
    pub cycles: f64,
    /// Vectors scored.
    pub vectors_scored: u64,
    /// LUT reads issued.
    pub lut_reads: u64,
}

/// One SCM instance: adder tree plus top-k unit.
#[derive(Debug, Clone)]
pub struct Scm {
    n_u: usize,
    topk: PHeap,
    stats: ScmStats,
}

impl Scm {
    /// Creates an SCM with an `n_u`-wide reduction tree and a `k`-entry
    /// top-k unit.
    ///
    /// # Panics
    ///
    /// Panics if `n_u == 0` or `k == 0`.
    pub fn new(n_u: usize, k: usize) -> Self {
        assert!(n_u > 0, "SCM needs a non-empty reduction tree");
        Self {
            n_u,
            topk: PHeap::new(k),
            stats: ScmStats::default(),
        }
    }

    /// Activity so far.
    pub fn stats(&self) -> ScmStats {
        self.stats
    }

    /// Scores a slice of unpacked identifier rows against `lut`, pushing
    /// `(ids[i], score)` into the top-k unit.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != rows.len()` or a row width mismatches the
    /// LUT.
    pub fn scan(&mut self, rows: &[Vec<u8>], ids: &[u64], lut: &Lut) {
        assert_eq!(rows.len(), ids.len(), "id/row count mismatch");
        let m = lut.m();
        let cycles_per_vec = m.div_ceil(self.n_u) as f64;
        for (row, &id) in rows.iter().zip(ids) {
            assert_eq!(row.len(), m, "row width mismatches LUT");
            let score = lut.score(row);
            self.topk.offer(id, score);
            self.stats.cycles += cycles_per_vec;
            self.stats.vectors_scored += 1;
            self.stats.lut_reads += m as u64;
        }
    }

    /// Spills the top-k unit's contents to memory records (Section IV-A).
    pub fn spill(&mut self, record_bytes: usize) -> Vec<Neighbor> {
        self.topk.spill(record_bytes)
    }

    /// Restores previously spilled records.
    ///
    /// # Panics
    ///
    /// Panics if more records than `k` are provided or the unit is not
    /// empty.
    pub fn fill(&mut self, records: &[Neighbor], record_bytes: usize) {
        self.topk.fill(records, record_bytes);
    }

    /// Drains the final results, best first.
    pub fn drain_results(&mut self) -> Vec<Neighbor> {
        self.topk.drain_sorted()
    }

    /// Mutable access to the top-k unit (for merging partitions).
    pub fn topk_mut(&mut self) -> &mut PHeap {
        &mut self.topk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_index::LutPrecision;
    use anna_quant::pq::{PqCodebook, PqConfig};
    use anna_vector::VectorSet;

    fn lut(m: usize) -> Lut {
        let data = VectorSet::from_fn(m * 2, 64, |r, c| ((r * 5 + c) % 9) as f32);
        let book = PqCodebook::train(
            &data,
            &PqConfig {
                m,
                kstar: 16,
                iters: 3,
                seed: 0,
            },
        );
        Lut::build_ip(&vec![1.0; m * 2], &book, LutPrecision::F16)
    }

    #[test]
    fn scan_cycles_follow_ceil_m_over_nu() {
        let l = lut(8);
        let mut scm = Scm::new(4, 10);
        let rows = vec![vec![0u8; 8]; 5];
        let ids: Vec<u64> = (0..5).collect();
        scm.scan(&rows, &ids, &l);
        // ceil(8/4) = 2 cycles per vector.
        assert_eq!(scm.stats().cycles, 10.0);
        assert_eq!(scm.stats().vectors_scored, 5);
        assert_eq!(scm.stats().lut_reads, 40);
    }

    #[test]
    fn section_3b_example_two_cycles_per_vector() {
        // "when M=128 and N_u=64, the module will take two cycles".
        let mut scm = Scm::new(64, 10);
        let l = {
            let data = VectorSet::from_fn(256, 64, |r, c| ((r + c) % 5) as f32);
            let book = PqCodebook::train(
                &data,
                &PqConfig {
                    m: 128,
                    kstar: 16,
                    iters: 1,
                    seed: 0,
                },
            );
            Lut::build_ip(&vec![0.5; 256], &book, LutPrecision::F16)
        };
        scm.scan(&[vec![0u8; 128]], &[7], &l);
        assert_eq!(scm.stats().cycles, 2.0);
    }

    #[test]
    fn results_come_out_sorted() {
        let l = lut(4);
        let mut scm = Scm::new(4, 3);
        let rows: Vec<Vec<u8>> = (0..8).map(|i| vec![i as u8 % 16; 4]).collect();
        let ids: Vec<u64> = (0..8).collect();
        scm.scan(&rows, &ids, &l);
        let res = scm.drain_results();
        assert_eq!(res.len(), 3);
        assert!(res[0].score >= res[1].score && res[1].score >= res[2].score);
    }

    #[test]
    fn spill_fill_preserves_state() {
        let l = lut(4);
        let mut a = Scm::new(4, 5);
        let rows: Vec<Vec<u8>> = (0..6).map(|i| vec![(i * 2) as u8 % 16; 4]).collect();
        let ids: Vec<u64> = (0..6).collect();
        a.scan(&rows, &ids, &l);
        let records = a.spill(5);
        let mut b = Scm::new(4, 5);
        b.fill(&records, 5);
        let more_rows = vec![vec![3u8; 4]; 2];
        let more_ids = vec![100u64, 101];
        a.fill(&records, 5);
        a.scan(&more_rows, &more_ids, &l);
        b.scan(&more_rows, &more_ids, &l);
        assert_eq!(a.drain_results(), b.drain_results());
    }
}
