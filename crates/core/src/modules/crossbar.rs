//! The configurable crossbar between encoded-vector buffers and SCMs
//! (Section IV-A: "a configurable crossbar switch is added to connect
//! multiple encoded vector buffers with multiple SCMs").
//!
//! Two routings correspond to the two parallelism modes:
//!
//! * **broadcast** (inter-query): one buffer holds the whole cluster and
//!   feeds every SCM the same stream; each SCM scores it for a different
//!   query.
//! * **partition** (intra-query): the cluster is striped across several
//!   buffers; each buffer feeds one group of SCMs that share a query.
//!
//! The model checks the physical constraints — every SCM driven by
//! exactly one buffer port, no port oversubscribed — and computes the
//! per-SCM delivery bandwidth each routing sustains.

use serde::Serialize;

/// Routing mode for one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Routing {
    /// One buffer broadcasts the full cluster to all SCMs (inter-query).
    Broadcast,
    /// The cluster is striped across `stripes` buffer ports; each port
    /// feeds a disjoint group of `N_SCM / stripes` SCMs (intra-query).
    Partition {
        /// Number of buffer stripes.
        stripes: usize,
    },
}

/// Error for an unroutable configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteError(String);

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "crossbar routing error: {}", self.0)
    }
}

impl std::error::Error for RouteError {}

/// The crossbar: `ports` buffer read ports by `n_scm` SCM inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Crossbar {
    /// Buffer read ports available per cycle.
    pub ports: usize,
    /// SCM consumers.
    pub n_scm: usize,
}

impl Crossbar {
    /// The paper-scale crossbar: one port per SCM.
    pub fn paper(n_scm: usize) -> Self {
        Self {
            ports: n_scm,
            n_scm,
        }
    }

    /// Resolves a routing into per-port SCM lists.
    ///
    /// # Errors
    ///
    /// Returns an error if the stripe count is zero, exceeds the port
    /// count, or does not divide `N_SCM`.
    pub fn route(&self, routing: Routing) -> Result<Vec<Vec<usize>>, RouteError> {
        match routing {
            Routing::Broadcast => Ok(vec![(0..self.n_scm).collect()]),
            Routing::Partition { stripes } => {
                if stripes == 0 {
                    return Err(RouteError("zero stripes".into()));
                }
                if stripes > self.ports {
                    return Err(RouteError(format!(
                        "{stripes} stripes exceed {} ports",
                        self.ports
                    )));
                }
                if !self.n_scm.is_multiple_of(stripes) {
                    return Err(RouteError(format!(
                        "{stripes} stripes do not divide {} SCMs",
                        self.n_scm
                    )));
                }
                let per = self.n_scm / stripes;
                Ok((0..stripes)
                    .map(|s| (s * per..(s + 1) * per).collect())
                    .collect())
            }
        }
    }

    /// Checks a resolved routing: every SCM driven exactly once.
    pub fn verify(&self, routes: &[Vec<usize>]) -> Result<(), RouteError> {
        let mut driven = vec![0usize; self.n_scm];
        for (port, scms) in routes.iter().enumerate() {
            if port >= self.ports {
                return Err(RouteError(format!("port {port} out of range")));
            }
            for &s in scms {
                if s >= self.n_scm {
                    return Err(RouteError(format!("SCM {s} out of range")));
                }
                driven[s] += 1;
            }
        }
        for (s, &d) in driven.iter().enumerate() {
            if d != 1 {
                return Err(RouteError(format!("SCM {s} driven {d} times")));
            }
        }
        Ok(())
    }

    /// Identifier words each SCM receives per cycle under a routing, given
    /// each buffer port supplies `port_words` per cycle. Broadcast
    /// replicates the stream (every SCM sees the full rate); partition
    /// divides the cluster, so each SCM group consumes its own stripe at
    /// the full port rate.
    pub fn words_per_scm_cycle(&self, routing: Routing, port_words: usize) -> usize {
        match routing {
            Routing::Broadcast | Routing::Partition { .. } => port_words,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_feeds_every_scm_once() {
        let xb = Crossbar::paper(16);
        let routes = xb.route(Routing::Broadcast).unwrap();
        assert_eq!(routes.len(), 1);
        assert_eq!(routes[0].len(), 16);
        xb.verify(&routes).unwrap();
    }

    #[test]
    fn partition_stripes_are_disjoint() {
        let xb = Crossbar::paper(16);
        for stripes in [1usize, 2, 4, 8, 16] {
            let routes = xb.route(Routing::Partition { stripes }).unwrap();
            assert_eq!(routes.len(), stripes);
            xb.verify(&routes).unwrap();
        }
    }

    #[test]
    fn invalid_stripe_counts_rejected() {
        let xb = Crossbar::paper(16);
        assert!(xb.route(Routing::Partition { stripes: 0 }).is_err());
        assert!(xb.route(Routing::Partition { stripes: 3 }).is_err());
        assert!(xb.route(Routing::Partition { stripes: 32 }).is_err());
    }

    #[test]
    fn verify_catches_double_driving() {
        let xb = Crossbar::paper(4);
        let bad = vec![vec![0, 1], vec![1, 2, 3]];
        assert!(xb.verify(&bad).is_err());
        let missing = vec![vec![0, 1], vec![2]];
        assert!(xb.verify(&missing).is_err());
    }

    #[test]
    fn delivery_rate_is_port_rate() {
        let xb = Crossbar::paper(16);
        assert_eq!(xb.words_per_scm_cycle(Routing::Broadcast, 64), 64);
        assert_eq!(
            xb.words_per_scm_cycle(Routing::Partition { stripes: 4 }, 64),
            64
        );
    }
}
