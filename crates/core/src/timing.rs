//! Shared timing types: workload descriptions, traffic and timing reports.
//!
//! ANNA's runtime depends on the workload only through shapes and sizes —
//! `D`, `M`, `k*`, the metric, `|C|`, `k`, and the sizes of the clusters
//! each query visits. [`SearchShape`], [`QueryWorkload`] and
//! [`BatchWorkload`] capture exactly that, so the timing engines can run at
//! full paper scale (N = 10⁹) without materializing data, while the
//! functional accelerator ([`crate::accel`]) derives the same structures
//! from a real index.

use anna_vector::Metric;
use serde::{Deserialize, Serialize};

use crate::config::AnnaConfig;

/// The static shape of a search configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchShape {
    /// Vector dimension `D`.
    pub d: usize,
    /// PQ sub-vector count `M`.
    pub m: usize,
    /// Codewords per codebook `k*` (16 or 256).
    pub kstar: usize,
    /// Similarity metric (decides whether LUTs are rebuilt per cluster).
    pub metric: Metric,
    /// Total number of coarse clusters `|C|`.
    pub num_clusters: usize,
    /// Top-k entries tracked per query.
    pub k: usize,
}

impl SearchShape {
    /// Bits per encoded identifier, `log2 k*`.
    pub fn code_bits(&self) -> u32 {
        (usize::BITS - 1) - self.kstar.leading_zeros()
    }

    /// Bytes per encoded vector, `M · log2 k* / 8` (Section II-B).
    pub fn encoded_bytes_per_vector(&self) -> usize {
        (self.m * self.code_bits() as usize).div_ceil(8)
    }

    /// SCM cycles to score one encoded vector: `⌈M / N_u⌉`
    /// (Section III-B(3): "when M=128 and N_u=64, the module will take two
    /// cycles to process a single entry with pipelining").
    pub fn scan_cycles_per_vector(&self, n_u: usize) -> u64 {
        (self.m as u64).div_ceil(n_u as u64)
    }

    /// CPM cycles to fill one query's full set of `M` lookup tables:
    /// `D·k*/N_cu` (Section III-B, Mode 3).
    pub fn lut_fill_cycles(&self, n_cu: usize) -> f64 {
        self.d as f64 * self.kstar as f64 / n_cu as f64
    }

    /// CPM cycles for the cluster-filtering step of one query:
    /// `D·|C|/N_cu` (Section III-B, Mode 1).
    pub fn filter_compute_cycles(&self, n_cu: usize) -> f64 {
        self.d as f64 * self.num_clusters as f64 / n_cu as f64
    }

    /// Bytes of centroid data streamed during cluster filtering:
    /// `2·D·|C|` at 2-byte elements.
    pub fn centroid_bytes(&self) -> u64 {
        2 * self.d as u64 * self.num_clusters as u64
    }

    /// Sanity-checks the shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is degenerate (zero sizes, `k*` not 16/256, or
    /// `M` not dividing `D`).
    pub fn assert_valid(&self) {
        assert!(self.d > 0 && self.m > 0 && self.num_clusters > 0 && self.k > 0);
        assert!(
            self.kstar == 16 || self.kstar == 256,
            "ANNA supports k* of 16 and 256, got {}",
            self.kstar
        );
        assert!(
            self.d.is_multiple_of(self.m),
            "M={} must divide D={}",
            self.m,
            self.d
        );
    }
}

/// A single query's timing-relevant workload: the sizes of the `W` clusters
/// it visits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryWorkload {
    /// Search shape.
    pub shape: SearchShape,
    /// Sizes `|C_i|` of the visited clusters, in visit order.
    pub visited_cluster_sizes: Vec<usize>,
}

impl QueryWorkload {
    /// `W`, the number of clusters visited.
    pub fn w(&self) -> usize {
        self.visited_cluster_sizes.len()
    }

    /// Encoded vectors scanned in total.
    pub fn vectors_scanned(&self) -> u64 {
        self.visited_cluster_sizes.iter().map(|&s| s as u64).sum()
    }
}

/// A batched workload: cluster sizes plus each query's visit list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchWorkload {
    /// Search shape.
    pub shape: SearchShape,
    /// All cluster sizes `|C_i|` (length `|C|`).
    pub cluster_sizes: Vec<usize>,
    /// Per-query visited cluster ids (each of length `W`).
    pub visits: Vec<Vec<usize>>,
}

impl BatchWorkload {
    /// Batch size `B`.
    pub fn b(&self) -> usize {
        self.visits.len()
    }

    /// Inverts the visit lists into per-cluster visitor lists (the
    /// main-memory "array of arrays" of Section IV-A).
    pub fn visitors_per_cluster(&self) -> Vec<Vec<usize>> {
        let mut v: Vec<Vec<usize>> = vec![Vec::new(); self.cluster_sizes.len()];
        for (q, visits) in self.visits.iter().enumerate() {
            for &c in visits {
                v[c].push(q);
            }
        }
        v
    }
}

/// Byte-level memory-traffic breakdown of a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Centroid stream during cluster filtering.
    pub centroid_bytes: u64,
    /// Cluster metadata reads (start address + size, 64 B lines).
    pub cluster_meta_bytes: u64,
    /// Encoded-vector fetches (the dominant term).
    pub code_bytes: u64,
    /// Intermediate top-k spill records written to memory (batched mode).
    pub topk_spill_bytes: u64,
    /// Intermediate top-k fill records read back from memory (batched
    /// mode). Separated from spills so reads and writes price
    /// independently, as Table I does.
    pub topk_fill_bytes: u64,
    /// Query-id list writes/reads for the traffic optimization
    /// (Section IV-A).
    pub query_list_bytes: u64,
    /// Final result stores.
    pub result_bytes: u64,
}

impl TrafficReport {
    /// Total bytes moved.
    pub fn total(&self) -> u64 {
        self.centroid_bytes
            + self.cluster_meta_bytes
            + self.code_bytes
            + self.topk_spill_bytes
            + self.topk_fill_bytes
            + self.query_list_bytes
            + self.result_bytes
    }
}

/// Module activity counters, consumed by the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Activity {
    /// CPM busy cycles (filtering + residuals + LUT fills).
    pub cpm_cycles: f64,
    /// SCM busy cycles, summed over all SCMs (so utilization is
    /// `scm_cycles / (N_SCM · total)`).
    pub scm_cycles: f64,
    /// Top-k inputs offered across all units.
    pub topk_inputs: f64,
}

/// Which resource bounded the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Compute cycles exceeded memory cycles.
    Compute,
    /// Memory cycles exceeded compute cycles.
    Memory,
}

/// The timing outcome of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// End-to-end cycles.
    pub cycles: f64,
    /// Cycles spent in the cluster-filtering phase.
    pub filter_cycles: f64,
    /// Total compute demand in cycles (lower bound if perfectly memory
    /// overlapped).
    pub compute_cycles: f64,
    /// Total memory demand in cycles (`traffic / bytes-per-cycle`).
    pub memory_cycles: f64,
    /// Traffic breakdown.
    pub traffic: TrafficReport,
    /// Module activity for the energy model.
    pub activity: Activity,
    /// Queries completed in this run.
    pub queries: usize,
}

impl TimingReport {
    /// Wall-clock seconds under `cfg`'s clock.
    pub fn seconds(&self, cfg: &AnnaConfig) -> f64 {
        cfg.cycles_to_seconds(self.cycles)
    }

    /// Queries per second.
    pub fn qps(&self, cfg: &AnnaConfig) -> f64 {
        self.queries as f64 / self.seconds(cfg)
    }

    /// Mean latency per query in seconds (for a single-query run this is
    /// the query latency; for a batch it is batch time / B and the
    /// batch-completion latency is [`TimingReport::seconds`]).
    pub fn latency_seconds(&self, cfg: &AnnaConfig) -> f64 {
        self.seconds(cfg) / self.queries.max(1) as f64
    }

    /// Which resource bound the run.
    pub fn bound(&self) -> Bound {
        if self.memory_cycles > self.compute_cycles {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> SearchShape {
        SearchShape {
            d: 128,
            m: 64,
            kstar: 256,
            metric: Metric::L2,
            num_clusters: 10_000,
            k: 1000,
        }
    }

    #[test]
    fn encoded_bytes_match_paper() {
        let s = shape();
        assert_eq!(s.code_bits(), 8);
        assert_eq!(s.encoded_bytes_per_vector(), 64);
        let s16 = SearchShape {
            kstar: 16,
            m: 128,
            ..s
        };
        assert_eq!(s16.code_bits(), 4);
        assert_eq!(s16.encoded_bytes_per_vector(), 64);
    }

    #[test]
    fn scan_cycles_match_section_3b_example() {
        // "when M=128 and N_u=64, the module will take two cycles".
        let s = SearchShape {
            m: 128,
            kstar: 16,
            ..shape()
        };
        assert_eq!(s.scan_cycles_per_vector(64), 2);
        assert_eq!(shape().scan_cycles_per_vector(64), 1);
    }

    #[test]
    fn lut_fill_matches_formula() {
        // D·k*/N_cu = 128·256/96.
        let c = shape().lut_fill_cycles(96);
        assert!((c - 128.0 * 256.0 / 96.0).abs() < 1e-9);
    }

    #[test]
    fn filter_compute_matches_formula() {
        let c = shape().filter_compute_cycles(96);
        assert!((c - 128.0 * 10_000.0 / 96.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_total_sums_fields() {
        let t = TrafficReport {
            centroid_bytes: 1,
            cluster_meta_bytes: 2,
            code_bytes: 3,
            topk_spill_bytes: 4,
            topk_fill_bytes: 7,
            query_list_bytes: 5,
            result_bytes: 6,
        };
        assert_eq!(t.total(), 28);
    }

    #[test]
    fn report_rates() {
        let cfg = AnnaConfig::paper();
        let r = TimingReport {
            cycles: 1e6,
            filter_cycles: 0.0,
            compute_cycles: 2.0,
            memory_cycles: 1.0,
            traffic: TrafficReport::default(),
            activity: Activity::default(),
            queries: 10,
        };
        assert!((r.seconds(&cfg) - 1e-3).abs() < 1e-12);
        assert!((r.qps(&cfg) - 10_000.0).abs() < 1e-6);
        assert_eq!(r.bound(), Bound::Compute);
    }

    #[test]
    fn visitors_invert_visits() {
        let w = BatchWorkload {
            shape: shape(),
            cluster_sizes: vec![10, 20, 30],
            visits: vec![vec![0, 2], vec![2]],
        };
        let v = w.visitors_per_cluster();
        assert_eq!(v[0], vec![0]);
        assert!(v[1].is_empty());
        assert_eq!(v[2], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "k* of 16 and 256")]
    fn invalid_kstar_rejected() {
        SearchShape {
            kstar: 32,
            ..shape()
        }
        .assert_valid();
    }
}
