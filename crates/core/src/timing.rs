//! Shared timing types: workload descriptions, traffic and timing reports.
//!
//! ANNA's runtime depends on the workload only through shapes and sizes —
//! `D`, `M`, `k*`, the metric, `|C|`, `k`, and the sizes of the clusters
//! each query visits. The workload types ([`SearchShape`],
//! [`QueryWorkload`], [`BatchWorkload`]) and the byte-exact
//! [`TrafficReport`] live in the shared plan layer (`anna-plan`) so the
//! software engine prices the same structures; they are re-exported here
//! for continuity. This module keeps the simulator-side outcome types:
//! [`Activity`], [`Bound`] and [`TimingReport`].

use serde::{Deserialize, Serialize};

use crate::config::AnnaConfig;

pub use anna_plan::{BatchWorkload, QueryWorkload, SearchShape, TrafficReport};

/// Module activity counters, consumed by the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Activity {
    /// CPM busy cycles (filtering + residuals + LUT fills).
    pub cpm_cycles: f64,
    /// SCM busy cycles, summed over all SCMs (so utilization is
    /// `scm_cycles / (N_SCM · total)`).
    pub scm_cycles: f64,
    /// Top-k inputs offered across all units.
    pub topk_inputs: f64,
}

/// Which resource bounded the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Compute cycles exceeded memory cycles.
    Compute,
    /// Memory cycles exceeded compute cycles.
    Memory,
}

/// The timing outcome of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingReport {
    /// End-to-end cycles.
    pub cycles: f64,
    /// Cycles spent in the cluster-filtering phase.
    pub filter_cycles: f64,
    /// Total compute demand in cycles (lower bound if perfectly memory
    /// overlapped).
    pub compute_cycles: f64,
    /// Total memory demand in cycles (`traffic / bytes-per-cycle`).
    pub memory_cycles: f64,
    /// Traffic breakdown.
    pub traffic: TrafficReport,
    /// Module activity for the energy model.
    pub activity: Activity,
    /// Distinct cluster code fetches (each cluster's codes stream from
    /// memory once per fetch; equals the plan's
    /// [`clusters_fetched`](anna_plan::BatchPlan::clusters_fetched) in
    /// batched mode).
    pub clusters_fetched: u64,
    /// Encoded vectors scanned per SCM-group across all rounds (the plan's
    /// [`total_scan_work`](anna_plan::BatchPlan::total_scan_work) in
    /// batched mode).
    pub scan_work: u64,
    /// Queries completed in this run.
    pub queries: usize,
}

impl TimingReport {
    /// Wall-clock seconds under `cfg`'s clock.
    pub fn seconds(&self, cfg: &AnnaConfig) -> f64 {
        cfg.cycles_to_seconds(self.cycles)
    }

    /// Queries per second.
    pub fn qps(&self, cfg: &AnnaConfig) -> f64 {
        self.queries as f64 / self.seconds(cfg)
    }

    /// Mean latency per query in seconds (for a single-query run this is
    /// the query latency; for a batch it is batch time / B and the
    /// batch-completion latency is [`TimingReport::seconds`]).
    pub fn latency_seconds(&self, cfg: &AnnaConfig) -> f64 {
        self.seconds(cfg) / self.queries.max(1) as f64
    }

    /// Which resource bound the run.
    pub fn bound(&self) -> Bound {
        if self.memory_cycles > self.compute_cycles {
            Bound::Memory
        } else {
            Bound::Compute
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rates() {
        let cfg = AnnaConfig::paper();
        let r = TimingReport {
            cycles: 1e6,
            filter_cycles: 0.0,
            compute_cycles: 2.0,
            memory_cycles: 1.0,
            traffic: TrafficReport::default(),
            activity: Activity::default(),
            clusters_fetched: 0,
            scan_work: 0,
            queries: 10,
        };
        assert!((r.seconds(&cfg) - 1e-3).abs() < 1e-12);
        assert!((r.qps(&cfg) - 10_000.0).abs() < 1e-6);
        assert_eq!(r.bound(), Bound::Compute);
    }
}
