//! Host-side interface: device memory layout and the command protocol.
//!
//! Section III-A: "a host device first needs to i) configure ANNA by
//! sending a search configuration and ii) place the set of necessary data
//! structures in ANNA main memory (centroids C and encoded vectors) and
//! ANNA's on-chip SRAM (codebook B). Then, the host sends a search command
//! to ANNA with a query or a batch of queries as well as the number of
//! similar vectors (top-k) to search for."
//!
//! [`MemoryLayout`] plans the device DRAM image for an index —
//! centroids, per-cluster metadata (start address + size, as the EFM's
//! metadata reader expects), the packed code regions, the query-list
//! arrays of the traffic optimization (Section IV-A), the intermediate
//! top-k spill area, and the result region. [`Command`] models the host
//! command stream.

use anna_index::IvfPqIndex;
use serde::Serialize;

use crate::config::AnnaConfig;

/// Alignment of every device allocation (one memory line).
pub const LINE_BYTES: u64 = 64;

fn align_up(addr: u64) -> u64 {
    addr.div_ceil(LINE_BYTES) * LINE_BYTES
}

/// One region of device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Region {
    /// Start address (64 B aligned).
    pub base: u64,
    /// Size in bytes.
    pub bytes: u64,
}

impl Region {
    /// Exclusive end address.
    pub fn end(&self) -> u64 {
        self.base + self.bytes
    }

    /// Whether two regions overlap.
    pub fn overlaps(&self, other: &Region) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// Per-cluster metadata as the EFM reads it: "the start address for the
/// data within the cluster and the size of the cluster" (Section III-B(2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ClusterMeta {
    /// Device address of the cluster's packed codes.
    pub code_base: u64,
    /// Number of encoded vectors in the cluster.
    pub num_vectors: u64,
}

/// The planned device-DRAM image for one index plus run-time scratch.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MemoryLayout {
    /// Centroid matrix (2-byte elements, row-major).
    pub centroids: Region,
    /// Cluster metadata table (one 64 B line per cluster).
    pub cluster_meta: Region,
    /// Packed encoded vectors, cluster by cluster.
    pub codes: Region,
    /// Per-cluster query-list arrays (Section IV-A), sized for a batch.
    pub query_lists: Region,
    /// Intermediate top-k spill area (one record set per query).
    pub topk_spill: Region,
    /// Result region (top-k records per query).
    pub results: Region,
    /// Per-cluster metadata entries.
    pub meta: Vec<ClusterMeta>,
    /// Codebook bytes the host must load into the on-chip SRAM (not DRAM).
    pub codebook_sram_bytes: u64,
}

impl MemoryLayout {
    /// Plans the layout for `index`, sized for batches of up to
    /// `max_batch` queries at `w` clusters per query.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or `w == 0`.
    pub fn plan(cfg: &AnnaConfig, index: &IvfPqIndex, max_batch: usize, w: usize) -> Self {
        assert!(max_batch > 0 && w > 0, "degenerate batch plan");
        struct Alloc {
            cursor: u64,
        }
        impl Alloc {
            fn take(&mut self, bytes: u64) -> Region {
                let base = align_up(self.cursor);
                self.cursor = base + bytes;
                Region { base, bytes }
            }
        }
        let mut alloc = Alloc { cursor: 0 };

        let d = index.dim() as u64;
        let c = index.num_clusters() as u64;
        let centroids = alloc.take(2 * d * c);
        let cluster_meta = alloc.take(LINE_BYTES * c);

        // Codes: contiguous per cluster, each cluster line-aligned so the
        // EFM's streaming fetch starts on a line boundary.
        let mut meta = Vec::with_capacity(index.num_clusters());
        let codes_base = align_up(alloc.cursor);
        for i in 0..index.num_clusters() {
            let cl = index.cluster(i);
            let r = alloc.take(cl.encoded_bytes());
            meta.push(ClusterMeta {
                code_base: r.base,
                num_vectors: cl.len() as u64,
            });
        }
        let codes = Region {
            base: codes_base,
            bytes: align_up(alloc.cursor) - codes_base,
        };

        // Query lists: worst case every query lists every of its W picks
        // in one cluster's array -> B*W ids of 3 B, plus the on-chip SRAM
        // pointer table is per-cluster (not in DRAM).
        let query_lists = alloc.take(3 * (max_batch as u64) * (w as u64));
        let topk_spill = alloc.take(
            (max_batch as u64)
                * (cfg.topk as u64)
                * (cfg.topk_record_bytes as u64)
                * cfg.n_scm as u64,
        );
        let results =
            alloc.take((max_batch as u64) * (cfg.topk as u64) * cfg.topk_record_bytes as u64);

        Self {
            centroids,
            cluster_meta,
            codes,
            query_lists,
            topk_spill,
            results,
            meta,
            codebook_sram_bytes: index.codebook().storage_bytes() as u64,
        }
    }

    /// All DRAM regions in layout order.
    pub fn regions(&self) -> [Region; 6] {
        [
            self.centroids,
            self.cluster_meta,
            self.codes,
            self.query_lists,
            self.topk_spill,
            self.results,
        ]
    }

    /// Total device-DRAM footprint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions().iter().map(|r| r.bytes).sum()
    }
}

/// A host-to-device command (Section III-A's control flow).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Command {
    /// Send the search configuration (metric, `k*`, `|C|`, `M`).
    Configure {
        /// Number of PQ sub-vectors.
        m: usize,
        /// Codewords per codebook.
        kstar: usize,
        /// Number of coarse clusters.
        num_clusters: usize,
        /// Whether lookup tables depend on the cluster (L2) or not (IP).
        lut_per_cluster: bool,
    },
    /// Load the codebook into on-chip SRAM.
    LoadCodebook {
        /// Bytes to load (`2·k*·D`).
        bytes: u64,
    },
    /// Run a search for a batch of queries.
    Search {
        /// Number of queries in the batch.
        batch: usize,
        /// Clusters to inspect per query.
        w: usize,
        /// Results to return per query.
        k: usize,
        /// Whether to use the memory-traffic-optimized schedule.
        optimized: bool,
    },
    /// Read back the result region.
    ReadResults {
        /// Number of queries whose results to read.
        batch: usize,
    },
}

/// Builds the canonical command sequence for a search session.
pub fn session_commands(
    index: &IvfPqIndex,
    batch: usize,
    w: usize,
    k: usize,
    optimized: bool,
) -> Vec<Command> {
    vec![
        Command::Configure {
            m: index.codebook().m(),
            kstar: index.codebook().kstar(),
            num_clusters: index.num_clusters(),
            lut_per_cluster: index.metric().lut_depends_on_cluster(),
        },
        Command::LoadCodebook {
            bytes: index.codebook().storage_bytes() as u64,
        },
        Command::Search {
            batch,
            w,
            k,
            optimized,
        },
        Command::ReadResults { batch },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_index::IvfPqConfig;
    use anna_vector::{Metric, VectorSet};

    fn index() -> IvfPqIndex {
        let data = VectorSet::from_fn(8, 500, |r, c| ((r * 13 + c * 5) % 23) as f32);
        IvfPqIndex::build(
            &data,
            &IvfPqConfig {
                metric: Metric::L2,
                num_clusters: 8,
                m: 4,
                kstar: 16,
                ..IvfPqConfig::default()
            },
        )
    }

    #[test]
    fn regions_are_aligned_and_disjoint() {
        let idx = index();
        let layout = MemoryLayout::plan(&AnnaConfig::paper(), &idx, 64, 8);
        let regions = layout.regions();
        for r in &regions {
            assert_eq!(r.base % LINE_BYTES, 0, "region not line-aligned");
        }
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                assert!(
                    !regions[i].overlaps(&regions[j]),
                    "regions {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn cluster_meta_addresses_are_consistent() {
        let idx = index();
        let layout = MemoryLayout::plan(&AnnaConfig::paper(), &idx, 16, 4);
        assert_eq!(layout.meta.len(), idx.num_clusters());
        for (i, m) in layout.meta.iter().enumerate() {
            assert!(m.code_base >= layout.codes.base);
            assert!(m.code_base + idx.cluster(i).encoded_bytes() <= layout.codes.end());
            assert_eq!(m.num_vectors, idx.cluster(i).len() as u64);
            assert_eq!(m.code_base % LINE_BYTES, 0, "cluster {i} not aligned");
        }
        // Clusters must not overlap each other.
        let mut spans: Vec<(u64, u64)> = layout
            .meta
            .iter()
            .enumerate()
            .map(|(i, m)| (m.code_base, m.code_base + idx.cluster(i).encoded_bytes()))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "cluster code regions overlap");
        }
    }

    #[test]
    fn centroid_region_matches_2dc() {
        let idx = index();
        let layout = MemoryLayout::plan(&AnnaConfig::paper(), &idx, 16, 4);
        assert_eq!(layout.centroids.bytes, 2 * 8 * 8);
        assert_eq!(
            layout.codebook_sram_bytes,
            idx.codebook().storage_bytes() as u64
        );
    }

    #[test]
    fn spill_area_scales_with_batch_and_scms() {
        let idx = index();
        let cfg = AnnaConfig::paper();
        let small = MemoryLayout::plan(&cfg, &idx, 10, 4);
        let large = MemoryLayout::plan(&cfg, &idx, 100, 4);
        assert_eq!(large.topk_spill.bytes, 10 * small.topk_spill.bytes);
        assert_eq!(small.topk_spill.bytes, 10 * 1000 * 5 * 16);
    }

    #[test]
    fn command_sequence_is_configure_load_search_read() {
        let idx = index();
        let cmds = session_commands(&idx, 32, 8, 100, true);
        assert_eq!(cmds.len(), 4);
        assert!(matches!(
            cmds[0],
            Command::Configure {
                kstar: 16,
                m: 4,
                lut_per_cluster: true,
                ..
            }
        ));
        assert!(matches!(cmds[1], Command::LoadCodebook { .. }));
        assert!(matches!(
            cmds[2],
            Command::Search {
                optimized: true,
                ..
            }
        ));
        assert!(matches!(cmds[3], Command::ReadResults { batch: 32 }));
    }

    #[test]
    fn total_footprint_is_sum_of_regions() {
        let idx = index();
        let layout = MemoryLayout::plan(&AnnaConfig::paper(), &idx, 16, 4);
        assert_eq!(
            layout.total_bytes(),
            layout.regions().iter().map(|r| r.bytes).sum::<u64>()
        );
        assert!(layout.total_bytes() > 0);
    }
}
