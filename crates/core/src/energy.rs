//! Area, power and energy model — the reproduction of Table I and the
//! inputs to Figure 10.
//!
//! The paper implements ANNA in Chisel, synthesizes at TSMC 40 nm GP /
//! 1 GHz, and reports per-module area and peak power (Table I); system
//! energy is then obtained by post-processing per-component power with
//! activity ("In practice, not all modules are fully utilized at the same
//! time, and thus the actual power usage (2-3W) is lower than the peak").
//! We cannot synthesize RTL here, so the per-module area/peak-power
//! figures are taken as model constants (DESIGN.md, substitution 4) and
//! energy is computed from the simulator's activity counters exactly as
//! the paper post-processes its own numbers.

use serde::Serialize;

use crate::config::AnnaConfig;
use crate::timing::TimingReport;

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ModuleBudget {
    /// Module name as printed in Table I.
    pub name: &'static str,
    /// Area in mm² at 40 nm.
    pub area_mm2: f64,
    /// Peak power in watts at 1 GHz.
    pub peak_power_w: f64,
}

/// The per-module area/power model (Table I).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AreaPowerModel {
    /// Codebook/Cluster Processing Module.
    pub cpm: ModuleBudget,
    /// Encoded Vector Fetch Module.
    pub efm: ModuleBudget,
    /// All Similarity Computation Modules together (16× in the paper).
    pub scm_total: ModuleBudget,
    /// Memory Access Interface.
    pub mai: ModuleBudget,
    /// Fraction of peak power drawn by an idle module (static/leakage +
    /// clock tree); chosen so a typically-utilized run lands in the
    /// paper's observed 2–3 W band.
    pub idle_fraction: f64,
}

impl AreaPowerModel {
    /// Table I of the paper.
    pub fn paper() -> Self {
        Self {
            cpm: ModuleBudget {
                name: "Codebook/Cluster Processing Module",
                area_mm2: 1.17,
                peak_power_w: 0.391,
            },
            efm: ModuleBudget {
                name: "Encoded Vector Fetch Module",
                area_mm2: 2.87,
                peak_power_w: 1.065,
            },
            scm_total: ModuleBudget {
                name: "Similarity Computation Module (16x)",
                area_mm2: 13.30,
                peak_power_w: 3.795,
            },
            mai: ModuleBudget {
                name: "Memory Access Interface (MAI)",
                area_mm2: 0.17,
                peak_power_w: 0.147,
            },
            idle_fraction: 0.15,
        }
    }

    /// Total accelerator area (the Table I "ANNA Accelerator" row:
    /// 17.51 mm²).
    pub fn total_area_mm2(&self) -> f64 {
        self.cpm.area_mm2 + self.efm.area_mm2 + self.scm_total.area_mm2 + self.mai.area_mm2
    }

    /// Total peak power (Table I: 5.398 W).
    pub fn total_peak_power_w(&self) -> f64 {
        self.cpm.peak_power_w
            + self.efm.peak_power_w
            + self.scm_total.peak_power_w
            + self.mai.peak_power_w
    }

    /// Area of `n` accelerator instances (the "ANNA Accelerators (12×)"
    /// row: 210.12 mm²).
    pub fn scaled_area_mm2(&self, n: usize) -> f64 {
        self.total_area_mm2() * n as f64
    }

    /// Peak power of `n` instances (64.776 W at n = 12).
    pub fn scaled_peak_power_w(&self, n: usize) -> f64 {
        self.total_peak_power_w() * n as f64
    }

    /// Average power drawn during a simulated run, from per-module
    /// utilization: `P = Σ_m peak_m · (idle + (1 − idle) · util_m)`.
    ///
    /// Utilizations come from the report's activity counters:
    /// CPM = busy cycles / total; SCM = busy SCM-cycles / (N_SCM · total);
    /// EFM and MAI follow memory-channel occupancy.
    pub fn average_power_w(&self, cfg: &AnnaConfig, report: &TimingReport) -> f64 {
        let total = report.cycles.max(1.0);
        let u_cpm = (report.activity.cpm_cycles / total).clamp(0.0, 1.0);
        let u_scm = (report.activity.scm_cycles / (cfg.n_scm as f64 * total)).clamp(0.0, 1.0);
        let u_mem = (report.memory_cycles / total).clamp(0.0, 1.0);
        let act = |b: &ModuleBudget, u: f64| {
            b.peak_power_w * (self.idle_fraction + (1.0 - self.idle_fraction) * u)
        };
        act(&self.cpm, u_cpm)
            + act(&self.scm_total, u_scm)
            + act(&self.efm, u_mem)
            + act(&self.mai, u_mem)
    }

    /// Per-module average power during a simulated run, in watts — the
    /// breakdown the paper's "post-process power consumption from each
    /// component" step produces. Ordered CPM, EFM, SCM (all), MAI.
    pub fn power_breakdown_w(&self, cfg: &AnnaConfig, report: &TimingReport) -> [(String, f64); 4] {
        let total = report.cycles.max(1.0);
        let u_cpm = (report.activity.cpm_cycles / total).clamp(0.0, 1.0);
        let u_scm = (report.activity.scm_cycles / (cfg.n_scm as f64 * total)).clamp(0.0, 1.0);
        let u_mem = (report.memory_cycles / total).clamp(0.0, 1.0);
        let act = |b: &ModuleBudget, u: f64| {
            b.peak_power_w * (self.idle_fraction + (1.0 - self.idle_fraction) * u)
        };
        [
            (self.cpm.name.to_string(), act(&self.cpm, u_cpm)),
            (self.efm.name.to_string(), act(&self.efm, u_mem)),
            (self.scm_total.name.to_string(), act(&self.scm_total, u_scm)),
            (self.mai.name.to_string(), act(&self.mai, u_mem)),
        ]
    }

    /// Energy in joules for a simulated run.
    pub fn energy_joules(&self, cfg: &AnnaConfig, report: &TimingReport) -> f64 {
        self.average_power_w(cfg, report) * report.seconds(cfg)
    }

    /// Energy per query in joules.
    pub fn energy_per_query_joules(&self, cfg: &AnnaConfig, report: &TimingReport) -> f64 {
        self.energy_joules(cfg, report) / report.queries.max(1) as f64
    }
}

impl Default for AreaPowerModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Reference die sizes the paper compares against (Section V-C).
pub mod reference {
    /// Intel Skylake-X LCC die, mm² at 14 nm ("325.4 mm²").
    pub const CPU_DIE_MM2: f64 = 325.4;
    /// NVIDIA V100 die, mm² at 12 nm ("815 mm²").
    pub const GPU_DIE_MM2: f64 = 815.0;
    /// Average CPU package power running ScaNN (W, RAPL).
    pub const CPU_POWER_SCANN_W: f64 = 116.0;
    /// Average CPU package power running Faiss (W, RAPL).
    pub const CPU_POWER_FAISS_W: f64 = 139.0;
    /// Average GPU power running Faiss (W).
    pub const GPU_POWER_W: f64 = 151.8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::{Activity, TrafficReport};

    fn report(cycles: f64, cpm: f64, scm: f64, mem: f64) -> TimingReport {
        TimingReport {
            cycles,
            filter_cycles: 0.0,
            compute_cycles: cpm + scm,
            memory_cycles: mem,
            traffic: TrafficReport::default(),
            clusters_fetched: 0,
            scan_work: 0,
            activity: Activity {
                cpm_cycles: cpm,
                scm_cycles: scm,
                topk_inputs: 0.0,
            },
            queries: 1,
        }
    }

    #[test]
    fn table1_totals_match_paper() {
        let m = AreaPowerModel::paper();
        assert!((m.total_area_mm2() - 17.51).abs() < 1e-9);
        assert!((m.total_peak_power_w() - 5.398).abs() < 1e-9);
        assert!((m.scaled_area_mm2(12) - 210.12).abs() < 1e-9);
        assert!((m.scaled_peak_power_w(12) - 64.776).abs() < 1e-6);
    }

    #[test]
    fn fully_utilized_run_draws_peak() {
        let cfg = AnnaConfig::paper();
        let m = AreaPowerModel::paper();
        let r = report(1000.0, 1000.0, 16.0 * 1000.0, 1000.0);
        assert!((m.average_power_w(&cfg, &r) - m.total_peak_power_w()).abs() < 1e-9);
    }

    #[test]
    fn typical_run_lands_in_2_to_3_watt_band() {
        // ~50% SCM utilization, light CPM, memory mostly busy — the
        // paper's "actual power usage (2-3W)".
        let cfg = AnnaConfig::paper();
        let m = AreaPowerModel::paper();
        let r = report(1000.0, 100.0, 16.0 * 350.0, 800.0);
        let p = m.average_power_w(&cfg, &r);
        assert!(
            (1.8..3.2).contains(&p),
            "average power {p} outside the paper's band"
        );
    }

    #[test]
    fn idle_run_draws_only_leakage() {
        let cfg = AnnaConfig::paper();
        let m = AreaPowerModel::paper();
        let r = report(1000.0, 0.0, 0.0, 0.0);
        let p = m.average_power_w(&cfg, &r);
        assert!((p - m.total_peak_power_w() * m.idle_fraction).abs() < 1e-9);
    }

    #[test]
    fn breakdown_sums_to_average_power() {
        let cfg = AnnaConfig::paper();
        let m = AreaPowerModel::paper();
        let r = report(1000.0, 150.0, 16.0 * 450.0, 900.0);
        let breakdown = m.power_breakdown_w(&cfg, &r);
        let sum: f64 = breakdown.iter().map(|(_, w)| w).sum();
        assert!((sum - m.average_power_w(&cfg, &r)).abs() < 1e-9);
        // SCMs dominate at high scan utilization, as in Table I.
        let scm = breakdown
            .iter()
            .find(|(n, _)| n.contains("Similarity"))
            .unwrap()
            .1;
        assert!(breakdown.iter().all(|(_, w)| *w <= scm + 1e-12));
    }

    #[test]
    fn energy_scales_with_time() {
        let cfg = AnnaConfig::paper();
        let m = AreaPowerModel::paper();
        let short = report(1e6, 5e5, 8e6, 5e5);
        let long = report(2e6, 1e6, 16e6, 1e6);
        let ratio = m.energy_joules(&cfg, &long) / m.energy_joules(&cfg, &short);
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn die_size_ratios_match_section_5c() {
        // "effectively 151× larger" CPU / "517× larger" GPU after
        // technology scaling — raw ratios before scaling:
        let m = AreaPowerModel::paper();
        let cpu_ratio = reference::CPU_DIE_MM2 / m.total_area_mm2();
        let gpu_ratio = reference::GPU_DIE_MM2 / m.total_area_mm2();
        assert!(cpu_ratio > 18.0 && cpu_ratio < 19.0);
        assert!(gpu_ratio > 46.0 && gpu_ratio < 47.0);
    }
}
