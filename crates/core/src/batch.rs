//! Batch scheduling for the memory-traffic optimization (Section IV).
//!
//! After cluster filtering, the optimized schedule processes clusters in
//! series; each cluster's codes are fetched once and scored against every
//! query visiting it. With `N_SCM` similarity-computation modules, each
//! *round* runs up to `N_SCM / g` queries in parallel, where `g` is the
//! number of SCMs allocated per query:
//!
//! * `g = 1` (**inter-query**): each SCM runs a different query over the
//!   full cluster (the EFM broadcasts the same codes to all SCMs).
//! * `g > 1` (**intra-query**): a query's cluster scan is split over `g`
//!   SCMs, each scanning `|C_i|/g` codes with its own partial top-k unit
//!   (merged at the end). Lower latency, more top-k spill traffic.
//!
//! The paper's guidance: expect `B·|W|/|C|` queries per cluster and size
//! `g = N_SCM / expected` ("for ANNA with 16 SCMs, we allocate four SCMs to
//! a single query" when 4 queries are expected per cluster).

use serde::{Deserialize, Serialize};

use crate::config::AnnaConfig;
use crate::timing::BatchWorkload;

/// How SCMs are assigned to queries within a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScmAllocation {
    /// One SCM per query; `N_SCM` queries per round.
    InterQuery,
    /// `scm_per_query` SCMs per query; `N_SCM / scm_per_query` queries per
    /// round.
    IntraQuery {
        /// SCMs allocated to each query (must divide `N_SCM`).
        scm_per_query: usize,
    },
    /// Pick `g` from the expected queries per cluster (`B·|W|/|C|`), per
    /// Section IV-A.
    Auto,
}

impl ScmAllocation {
    /// Resolves to a concrete `g` (SCMs per query) for a workload.
    ///
    /// # Panics
    ///
    /// Panics if an explicit `scm_per_query` is zero, exceeds `N_SCM`, or
    /// does not divide it.
    pub fn resolve(self, cfg: &AnnaConfig, workload: &BatchWorkload) -> usize {
        match self {
            ScmAllocation::InterQuery => 1,
            ScmAllocation::IntraQuery { scm_per_query } => {
                assert!(
                    scm_per_query > 0 && scm_per_query <= cfg.n_scm,
                    "scm_per_query {scm_per_query} out of range"
                );
                assert!(
                    cfg.n_scm.is_multiple_of(scm_per_query),
                    "scm_per_query {scm_per_query} must divide N_SCM {}",
                    cfg.n_scm
                );
                scm_per_query
            }
            ScmAllocation::Auto => {
                let b = workload.b().max(1) as f64;
                let w = workload.visits.iter().map(|v| v.len() as f64).sum::<f64>() / b;
                let expected = (b * w / workload.cluster_sizes.len().max(1) as f64).max(1.0);
                let mut g = (cfg.n_scm as f64 / expected).round().max(1.0) as usize;
                g = g.min(cfg.n_scm);
                // Snap to the largest divisor of N_SCM not exceeding g.
                while !cfg.n_scm.is_multiple_of(g) {
                    g -= 1;
                }
                g
            }
        }
    }
}

/// One scheduled round: a set of queries scored against one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Round {
    /// Cluster id.
    pub cluster: usize,
    /// Cluster size `|C_i|`.
    pub cluster_size: usize,
    /// Queries processed in this round (`≤ N_SCM / g`).
    pub queries: Vec<usize>,
    /// Whether this round is the first to touch its cluster (and therefore
    /// pays the code fetch; later rounds reuse the on-chip buffer).
    pub fetches_codes: bool,
}

/// A full batched schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// SCMs per query `g`.
    pub scm_per_query: usize,
    /// Queries per round (`N_SCM / g`).
    pub queries_per_round: usize,
    /// The rounds, in execution order (cluster-major).
    pub rounds: Vec<Round>,
}

impl Schedule {
    /// Total encoded vectors scanned per SCM-group across all rounds
    /// (timing-relevant work).
    pub fn total_scan_work(&self) -> u64 {
        self.rounds.iter().map(|r| r.cluster_size as u64).sum()
    }

    /// Number of distinct cluster fetches (each loads the cluster's codes
    /// once — at most `|C|`, versus `B·|W|` in the conventional schedule).
    pub fn clusters_fetched(&self) -> u64 {
        self.rounds.iter().filter(|r| r.fetches_codes).count() as u64
    }
}

/// Plans the cluster-major schedule for a batch workload.
///
/// The work assignment is delegated to
/// [`anna_index::parallel::crossbar_tiles`] with a query-group bound of
/// `N_SCM / g` — the *same* tiling the software batch engine's worker
/// pool executes, so the timed schedule and the functional reference
/// agree on work placement by construction. Clusters with no visitors
/// are skipped entirely; clusters with more visitors than fit a round
/// get multiple consecutive rounds (codes stay buffered, so only the
/// first round fetches).
///
/// # Panics
///
/// Panics if `g` does not divide `cfg.n_scm` or any visit references an
/// out-of-range cluster.
pub fn plan(cfg: &AnnaConfig, workload: &BatchWorkload, alloc: ScmAllocation) -> Schedule {
    let g = alloc.resolve(cfg, workload);
    let queries_per_round = (cfg.n_scm / g).max(1);
    let visitors = workload.visitors_per_cluster();

    let rounds = anna_index::parallel::crossbar_tiles(&visitors, queries_per_round)
        .into_iter()
        .map(|tile| Round {
            cluster_size: workload.cluster_sizes[tile.cluster],
            cluster: tile.cluster,
            queries: tile.queries,
            fetches_codes: tile.fetches_codes,
        })
        .collect();
    Schedule {
        scm_per_query: g,
        queries_per_round,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::SearchShape;
    use anna_vector::Metric;

    fn shape(num_clusters: usize) -> SearchShape {
        SearchShape {
            d: 128,
            m: 64,
            kstar: 256,
            metric: Metric::L2,
            num_clusters,
            k: 1000,
        }
    }

    fn workload(b: usize, w: usize, c: usize) -> BatchWorkload {
        BatchWorkload {
            shape: shape(c),
            cluster_sizes: vec![100; c],
            visits: (0..b)
                .map(|q| (0..w).map(|i| (q + i) % c).collect())
                .collect(),
        }
    }

    #[test]
    fn auto_matches_paper_example() {
        // B=1000, |C|=10000, |W|=40 -> 4 queries/cluster -> g = 16/4 = 4.
        let cfg = AnnaConfig::paper();
        let w = workload(1000, 40, 10_000);
        assert_eq!(ScmAllocation::Auto.resolve(&cfg, &w), 4);
    }

    #[test]
    fn auto_saturates_to_inter_query_when_crowded() {
        // Many queries per cluster -> g = 1.
        let cfg = AnnaConfig::paper();
        let w = workload(1000, 40, 100);
        assert_eq!(ScmAllocation::Auto.resolve(&cfg, &w), 1);
    }

    #[test]
    fn auto_uses_all_scms_when_sparse() {
        let cfg = AnnaConfig::paper();
        let w = workload(2, 2, 10_000);
        assert_eq!(ScmAllocation::Auto.resolve(&cfg, &w), 16);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn intra_query_must_divide_nscm() {
        let cfg = AnnaConfig::paper();
        let w = workload(10, 2, 100);
        ScmAllocation::IntraQuery { scm_per_query: 3 }.resolve(&cfg, &w);
    }

    #[test]
    fn plan_covers_every_visit_exactly_once() {
        let cfg = AnnaConfig::paper();
        let w = workload(50, 8, 64);
        let schedule = plan(&cfg, &w, ScmAllocation::InterQuery);
        let mut count = vec![0usize; 50];
        for r in &schedule.rounds {
            for &q in &r.queries {
                assert!(w.visits[q].contains(&r.cluster));
                count[q] += 1;
            }
        }
        assert!(
            count.iter().all(|&c| c == 8),
            "every query must appear W times"
        );
    }

    #[test]
    fn only_first_round_per_cluster_fetches() {
        let cfg = AnnaConfig::paper();
        // 40 queries all visiting cluster 0 -> ceil(40/16) = 3 rounds.
        let w = BatchWorkload {
            shape: shape(4),
            cluster_sizes: vec![100, 0, 0, 0],
            visits: (0..40).map(|_| vec![0]).collect(),
        };
        let schedule = plan(&cfg, &w, ScmAllocation::InterQuery);
        assert_eq!(schedule.rounds.len(), 3);
        assert_eq!(schedule.clusters_fetched(), 1);
        assert!(schedule.rounds[0].fetches_codes);
        assert!(!schedule.rounds[1].fetches_codes);
        assert!(!schedule.rounds[2].fetches_codes);
    }

    #[test]
    fn empty_clusters_are_skipped() {
        let cfg = AnnaConfig::paper();
        let w = BatchWorkload {
            shape: shape(3),
            cluster_sizes: vec![10, 10, 10],
            visits: vec![vec![2]],
        };
        let schedule = plan(&cfg, &w, ScmAllocation::InterQuery);
        assert_eq!(schedule.rounds.len(), 1);
        assert_eq!(schedule.rounds[0].cluster, 2);
    }

    #[test]
    fn intra_query_reduces_queries_per_round() {
        let cfg = AnnaConfig::paper();
        let w = workload(32, 4, 16);
        let s = plan(&cfg, &w, ScmAllocation::IntraQuery { scm_per_query: 8 });
        assert_eq!(s.queries_per_round, 2);
        for r in &s.rounds {
            assert!(r.queries.len() <= 2);
        }
    }
}
