//! P-heap hardware priority queue — ANNA's top-k selection unit
//! (Section III-B(4), after Bhagwan & Lin, INFOCOM 2000).
//!
//! The unit tracks the `k` largest similarity scores seen, accepting one
//! input per cycle; scores are stored at the hardware's 2-byte precision
//! and spill/fill records are 5 bytes (3 B vector id + 2 B score,
//! Section IV-B). This model is functional (it produces the actual result
//! ids) *and* metered (it counts accepted/rejected inputs and spill/fill
//! traffic for the timing and energy models).

use anna_vector::{f16, Neighbor};
use serde::{Deserialize, Serialize};

/// Activity counters of a P-heap unit, consumed by the energy model.
///
/// Spills (writes to main memory) and fills (reads back) are counted
/// separately so the traffic/energy model can price reads and writes
/// independently, as Table I does. Every field is a plain sum, so
/// [`PHeapStats::accumulate`] is commutative and associative — partial
/// stats can be combined in any order (the same partition-invariance
/// contract `BatchStats` keeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PHeapStats {
    /// Inputs offered (one per cycle).
    pub inputs: u64,
    /// Inputs that displaced an entry (heap write + sift).
    pub accepted: u64,
    /// Spill events (buffer flushes to main memory).
    pub spills: u64,
    /// Bytes written by spills.
    pub spill_bytes: u64,
    /// Fill events (buffer restores from main memory).
    pub fills: u64,
    /// Bytes read by fills.
    pub fill_bytes: u64,
}

impl PHeapStats {
    /// Adds another unit's counters into this one (field-wise sum).
    pub fn accumulate(&mut self, other: &PHeapStats) {
        self.inputs += other.inputs;
        self.accepted += other.accepted;
        self.spills += other.spills;
        self.spill_bytes += other.spill_bytes;
        self.fills += other.fills;
        self.fill_bytes += other.fill_bytes;
    }
}

/// A fixed-capacity hardware priority queue tracking the `k` best scores.
///
/// # Example
///
/// ```
/// use anna_core::pheap::PHeap;
///
/// let mut heap = PHeap::new(2);
/// heap.offer(10, 1.0);
/// heap.offer(11, 5.0);
/// heap.offer(12, 3.0);
/// let best = heap.drain_sorted();
/// assert_eq!(best[0].id, 11);
/// assert_eq!(best[1].id, 12);
/// ```
#[derive(Debug, Clone)]
pub struct PHeap {
    k: usize,
    /// Array-embedded binary min-heap on score, as the P-heap hardware
    /// lays its SRAM banks out.
    heap: Vec<Neighbor>,
    stats: PHeapStats,
}

impl PHeap {
    /// Creates a unit tracking the best `k` entries.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k capacity must be positive");
        Self {
            k,
            heap: Vec::with_capacity(k),
            stats: PHeapStats::default(),
        }
    }

    /// Capacity `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if the unit holds no entries.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Activity counters so far.
    pub fn stats(&self) -> PHeapStats {
        self.stats
    }

    /// Offers one input (one hardware cycle). The score is rounded through
    /// the 2-byte on-chip format before comparison, as the SRAM stores it.
    /// Returns `true` if the entry was kept.
    pub fn offer(&mut self, id: u64, score: f32) -> bool {
        self.stats.inputs += 1;
        let score = f16::round_trip(score);
        if score.is_nan() {
            return false;
        }
        if self.heap.len() < self.k {
            self.heap.push(Neighbor::new(id, score));
            self.sift_up(self.heap.len() - 1);
            self.stats.accepted += 1;
            return true;
        }
        let worst = self.heap[0];
        let candidate = Neighbor::new(id, score);
        if candidate > worst {
            self.heap[0] = candidate;
            self.sift_down(0);
            self.stats.accepted += 1;
            true
        } else {
            false
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i] < self.heap[parent] {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut min = i;
            if l < self.heap.len() && self.heap[l] < self.heap[min] {
                min = l;
            }
            if r < self.heap.len() && self.heap[r] < self.heap[min] {
                min = r;
            }
            if min == i {
                break;
            }
            self.heap.swap(i, min);
            i = min;
        }
    }

    /// Serializes the current contents to spill records and empties the
    /// unit (the "flush its contents to the main memory" path used by the
    /// batched schedule, Section IV-A). Counts `k · record_bytes` traffic.
    pub fn spill(&mut self, record_bytes: usize) -> Vec<Neighbor> {
        self.stats.spills += 1;
        self.stats.spill_bytes += (self.heap.len() * record_bytes) as u64;
        std::mem::take(&mut self.heap)
    }

    /// Restores previously spilled records (the "initialize its contents
    /// from the main memory" path). Counts the fill traffic.
    ///
    /// # Panics
    ///
    /// Panics if more than `k` records are provided.
    pub fn fill(&mut self, records: &[Neighbor], record_bytes: usize) {
        assert!(records.len() <= self.k, "fill exceeds capacity");
        assert!(self.heap.is_empty(), "fill into a non-empty unit");
        self.stats.fills += 1;
        self.stats.fill_bytes += (records.len() * record_bytes) as u64;
        self.heap.extend_from_slice(records);
        // Rebuild heap order.
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i);
        }
    }

    /// Consumes the unit's contents, best first (the end-of-search result
    /// store to memory).
    pub fn drain_sorted(&mut self) -> Vec<Neighbor> {
        let mut v = std::mem::take(&mut self.heap);
        v.sort_by(|a, b| b.cmp(a));
        v
    }

    /// Merges another unit's drained contents into this one (the
    /// intra-query SCM merge of Section IV-A).
    pub fn merge_from(&mut self, other: &mut PHeap) {
        for n in other.drain_sorted() {
            self.offer(n.id, n.score);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_largest() {
        let mut h = PHeap::new(3);
        for (id, s) in [(0, 5.0), (1, 1.0), (2, 9.0), (3, 7.0), (4, 3.0)] {
            h.offer(id, s);
        }
        let ids: Vec<u64> = h.drain_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 3, 0]);
    }

    #[test]
    fn scores_are_f16_rounded() {
        let mut h = PHeap::new(1);
        h.offer(0, 1.0009766); // not representable in f16
        let out = h.drain_sorted();
        assert_eq!(out[0].score, f16::round_trip(1.0009766));
    }

    #[test]
    fn f16_rounding_can_merge_near_ties() {
        // Two scores that differ by less than an f16 ulp collapse; the
        // lower id then wins — hardware-faithful tie behavior.
        let mut h = PHeap::new(1);
        h.offer(7, 1000.01);
        assert!(
            !h.offer(9, 1000.02),
            "f16-equal score with higher id must lose"
        );
    }

    #[test]
    fn spill_and_fill_roundtrip() {
        let mut h = PHeap::new(4);
        for i in 0..4 {
            h.offer(i, i as f32);
        }
        let records = h.spill(5);
        assert!(h.is_empty());
        assert_eq!(h.stats().spills, 1);
        assert_eq!(h.stats().spill_bytes, 20);
        assert_eq!(h.stats().fills, 0, "a spill is not a fill");
        let mut h2 = PHeap::new(4);
        h2.fill(&records, 5);
        assert_eq!(h2.len(), 4);
        // The restore is accounted as a fill (memory read), not a spill
        // (memory write) — the two directions price differently in Table I.
        assert_eq!(h2.stats().fills, 1);
        assert_eq!(h2.stats().fill_bytes, 20);
        assert_eq!(h2.stats().spills, 0);
        assert_eq!(h2.stats().spill_bytes, 0);
        // Post-fill behavior must be identical to never having spilled.
        h2.offer(9, 1.5);
        let ids: Vec<u64> = h2.drain_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 2, 9, 1]);
    }

    #[test]
    fn stats_count_inputs_and_accepts() {
        let mut h = PHeap::new(2);
        h.offer(0, 5.0);
        h.offer(1, 6.0);
        h.offer(2, 1.0); // rejected
        let s = h.stats();
        assert_eq!(s.inputs, 3);
        assert_eq!(s.accepted, 2);
    }

    #[test]
    fn merge_combines_partitions() {
        let mut a = PHeap::new(2);
        a.offer(0, 1.0);
        a.offer(1, 4.0);
        let mut b = PHeap::new(2);
        b.offer(2, 3.0);
        b.offer(3, 2.0);
        a.merge_from(&mut b);
        let ids: Vec<u64> = a.drain_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn matches_software_topk_on_stream() {
        use anna_vector::TopK;
        let mut h = PHeap::new(8);
        let mut t = TopK::new(8);
        let mut state = 42u64;
        for id in 0..1000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let s = ((state >> 40) as f32) / 100.0;
            let rounded = f16::round_trip(s);
            h.offer(id, s);
            t.push(id, rounded);
        }
        let hv: Vec<u64> = h.drain_sorted().iter().map(|n| n.id).collect();
        let tv: Vec<u64> = t.into_sorted_vec().iter().map(|n| n.id).collect();
        assert_eq!(hv, tv);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_k_rejected() {
        let _ = PHeap::new(0);
    }

    #[test]
    fn stats_accumulate_is_commutative() {
        let a = PHeapStats {
            inputs: 1,
            accepted: 2,
            spills: 3,
            spill_bytes: 4,
            fills: 5,
            fill_bytes: 6,
        };
        let b = PHeapStats {
            inputs: 10,
            accepted: 20,
            spills: 30,
            spill_bytes: 40,
            fills: 50,
            fill_bytes: 60,
        };
        let mut ab = a;
        ab.accumulate(&b);
        let mut ba = b;
        ba.accumulate(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.inputs, 11);
        assert_eq!(ab.fill_bytes, 66);
    }
}
