//! ANNA — the Approximate Nearest Neighbor search Accelerator model
//! (reproduction of Lee et al., HPCA 2022).
//!
//! This crate is the paper's primary contribution rebuilt in Rust:
//!
//! * [`config`] — the accelerator's design parameters (`N_cu`, `N_SCM`,
//!   `N_u`, clock, memory bandwidth, buffer sizes; Section V-A defaults).
//! * [`pheap`] — the P-heap hardware top-k unit (Section III-B(4)), both
//!   functional and metered.
//! * [`timing`] — workload shapes and timing/traffic/activity reports.
//! * [`engine::analytic`] — closed-form cycle counts implementing the
//!   paper's formulas (Sections III-B, IV-B).
//! * [`engine::cycle`] — an event-driven per-module simulation with double
//!   buffering and a serializing memory channel, cross-validated against
//!   the analytic engine.
//! * the shared plan layer (`anna-plan`, re-exported as [`plan`]) — the
//!   memory-traffic-optimization scheduler (Section IV): cluster-major
//!   rounds, inter-/intra-query SCM allocation, and the [`TrafficModel`]
//!   that prices a plan in bytes before execution.
//! * [`energy`] — the Table I area/power model and activity-based energy
//!   accounting (Figure 10's inputs).
//! * [`accel`] — [`Anna`]: the functional accelerator bound to a real
//!   [`anna_index::IvfPqIndex`], producing hardware-faithful results
//!   (f16 LUTs, P-heap selection, spill/fill) together with timing.
//!
//! # Quick start
//!
//! ```
//! use anna_core::{Anna, AnnaConfig};
//! use anna_index::{IvfPqConfig, IvfPqIndex};
//! use anna_vector::{Metric, VectorSet};
//!
//! // Build a small index and run a hardware-faithful search.
//! let data = VectorSet::from_fn(16, 1000, |r, c| ((r * 13 + c * 7) % 31) as f32);
//! let index = IvfPqIndex::build(&data, &IvfPqConfig {
//!     metric: Metric::L2, num_clusters: 16, m: 8, kstar: 16,
//!     ..IvfPqConfig::default()
//! });
//! let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
//! let (hits, timing) = anna.search(data.row(0), 4, 10);
//! assert_eq!(hits.len(), 10);
//! println!("latency: {:.1} us", timing.latency_seconds(anna.config()) * 1e6);
//! ```

#![deny(missing_docs)]

pub mod accel;
pub mod config;
pub mod device;
pub mod energy;
pub mod engine;
pub mod host;
pub mod modules;
pub mod pheap;
pub mod timing;

pub use accel::{scale_out, scale_out_qps, Anna, ScaleOutReport};
pub use anna_plan as plan;
pub use anna_plan::{BatchPlan, PlanParams, Round, ScmAllocation, TrafficModel};
pub use config::{AnnaConfig, ValidateConfigError};
pub use energy::AreaPowerModel;
pub use pheap::PHeap;
pub use timing::{
    Activity, BatchWorkload, Bound, QueryWorkload, SearchShape, TimingReport, TrafficReport,
};
