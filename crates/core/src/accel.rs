//! The functional accelerator: ANNA running against a real index.
//!
//! [`Anna`] binds an [`AnnaConfig`] to an [`IvfPqIndex`] and executes
//! searches through the hardware module models of [`crate::modules`] —
//! the CPM filters clusters and fills f16 lookup tables, the EFM fetches
//! and unpacks codes in buffer-sized segments, and SCMs reduce and select
//! through P-heap top-k units with real spill/fill — while producing a
//! [`TimingReport`] from the timing engines for the same workload.
//! Results are therefore *bit-faithful to the hardware datapath* and
//! timing is consistent with what the paper's cycle-level simulator would
//! report.

use anna_index::{IvfPqIndex, Lut};
use anna_plan::ScmAllocation;
use anna_telemetry::Telemetry;
use anna_vector::{f16, metric, Metric, Neighbor, VectorSet};

use crate::config::{AnnaConfig, ValidateConfigError};
use crate::engine::analytic;
use crate::modules::crossbar::{Crossbar, Routing};
use crate::modules::{Cpm, Efm, Scm};
use crate::pheap::{PHeap, PHeapStats};
use crate::timing::{BatchWorkload, QueryWorkload, SearchShape, TimingReport};

/// ANNA bound to a database index.
///
/// # Example
///
/// ```
/// use anna_core::{Anna, AnnaConfig};
/// use anna_index::{IvfPqConfig, IvfPqIndex};
/// use anna_vector::{Metric, VectorSet};
///
/// let data = VectorSet::from_fn(8, 512, |r, c| ((r * 31 + c * 7) % 29) as f32);
/// let index = IvfPqIndex::build(&data, &IvfPqConfig {
///     metric: Metric::L2, num_clusters: 16, m: 4, kstar: 16,
///     ..IvfPqConfig::default()
/// });
/// let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
/// let (hits, timing) = anna.search(data.row(3), 4, 10);
/// assert_eq!(hits.len(), 10);
/// assert!(timing.cycles > 0.0);
/// ```
#[derive(Debug)]
pub struct Anna<'a> {
    cfg: AnnaConfig,
    index: &'a IvfPqIndex,
}

impl<'a> Anna<'a> {
    /// Binds a configuration to an index.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the index's
    /// `k*` is not supported by the hardware (16 or 256).
    pub fn new(cfg: AnnaConfig, index: &'a IvfPqIndex) -> Result<Self, ValidateConfigError> {
        cfg.validate()?;
        let kstar = index.codebook().kstar();
        if kstar != 16 && kstar != 256 {
            return Err(ValidateConfigError::unsupported_kstar(kstar));
        }
        Ok(Self { cfg, index })
    }

    /// The bound configuration.
    pub fn config(&self) -> &AnnaConfig {
        &self.cfg
    }

    /// The bound index.
    pub fn index(&self) -> &IvfPqIndex {
        self.index
    }

    /// The timing shape for a top-`k` search against this index.
    pub fn shape(&self, k: usize) -> SearchShape {
        SearchShape {
            d: self.index.dim(),
            m: self.index.codebook().m(),
            kstar: self.index.codebook().kstar(),
            metric: self.index.metric(),
            num_clusters: self.index.num_clusters(),
            k,
        }
    }

    /// Builds the LUT for cluster `cid` through the CPM (f16 entries,
    /// f16-rounded inner-product bias).
    fn cpm_lut(&self, cpm: &mut Cpm, ip_base: Option<&Lut>, q: &[f32], cid: usize) -> Lut {
        match self.index.metric() {
            Metric::InnerProduct => {
                let base = ip_base.expect("inner-product base LUT built up front");
                let bias = f16::round_trip(metric::dot(q, self.index.centroids().row(cid)));
                base.with_bias(bias)
            }
            Metric::L2 => {
                cpm.build_l2_lut(q, self.index.centroids().row(cid), self.index.codebook())
            }
        }
    }

    /// Scans one cluster through the EFM into `g` SCM partitions, after
    /// checking the crossbar can realize the buffer→SCM routing
    /// (broadcast for `g = N_SCM` single-partition groups is a
    /// special case of striping).
    fn scan_cluster(&self, efm: &mut Efm, scms: &mut [Scm], cid: usize, lut: &Lut) {
        let cluster = self.index.cluster(cid);
        if cluster.is_empty() {
            return;
        }
        let g = scms.len();
        if self.cfg.n_scm.is_multiple_of(g) {
            // Validate the physical routing for this partition count.
            let xb = Crossbar::paper(self.cfg.n_scm);
            let routing = if g == 1 {
                Routing::Broadcast
            } else {
                Routing::Partition { stripes: g }
            };
            let routes = xb.route(routing).expect("allocation divides N_SCM");
            xb.verify(&routes)
                .expect("crossbar routing is conflict-free");
        }
        let len = cluster.len();
        let chunk = len.div_ceil(g).max(1);
        for (seg_start, rows) in efm.fetch(cluster) {
            let seg_end = seg_start + rows.len();
            for (part, scm) in scms.iter_mut().enumerate() {
                let lo = (part * chunk).clamp(seg_start, seg_end);
                let hi = ((part + 1) * chunk).clamp(seg_start, seg_end);
                if lo < hi {
                    scm.scan(
                        &rows[lo - seg_start..hi - seg_start],
                        &cluster.ids[lo..hi],
                        lut,
                    );
                }
            }
        }
    }

    /// Runs one query in baseline mode, visiting the `w` most similar
    /// clusters and returning the top-`k` hits plus the timing report
    /// (intra-query parallelism over all SCMs, as the paper's latency
    /// evaluation uses).
    ///
    /// # Panics
    ///
    /// Panics if `q.len() != index.dim()` or `k == 0`.
    pub fn search(&self, q: &[f32], w: usize, k: usize) -> (Vec<Neighbor>, TimingReport) {
        assert!(k > 0, "k must be positive");
        let mut cpm = Cpm::new(self.cfg.n_cu);
        let mut efm = Efm::new(self.cfg.encoded_buffer_bytes);
        let selected = cpm.filter_clusters(q, self.index.centroids(), self.index.metric(), w);

        let ip_base = match self.index.metric() {
            Metric::InnerProduct => Some(cpm.build_ip_lut(q, self.index.codebook())),
            Metric::L2 => None,
        };

        let g = self.cfg.n_scm;
        let mut scms: Vec<Scm> = (0..g).map(|_| Scm::new(self.cfg.n_u, k)).collect();
        for &cid in &selected {
            let lut = self.cpm_lut(&mut cpm, ip_base.as_ref(), q, cid);
            self.scan_cluster(&mut efm, &mut scms, cid, &lut);
        }

        let mut merged = PHeap::new(k);
        for scm in &mut scms {
            merged.merge_from(scm.topk_mut());
        }
        let hits = merged.drain_sorted();

        let workload = QueryWorkload {
            shape: self.shape(k),
            visited_cluster_sizes: selected
                .iter()
                .map(|&c| self.index.cluster(c).len())
                .collect(),
        };
        let timing = analytic::single_query(&self.cfg, &workload, g);
        (hits, timing)
    }

    /// Builds the batch workload (visit lists) for a query set, using the
    /// CPM's hardware filtering (f16 score compare) so the plan matches
    /// what the silicon would select.
    pub fn plan_batch(&self, queries: &VectorSet, w: usize, k: usize) -> BatchWorkload {
        let mut cpm = Cpm::new(self.cfg.n_cu);
        BatchWorkload {
            shape: self.shape(k),
            cluster_sizes: self.index.cluster_sizes(),
            visits: queries
                .iter()
                .map(|q| cpm.filter_clusters(q, self.index.centroids(), self.index.metric(), w))
                .collect(),
        }
    }

    /// Runs a batch under the memory-traffic-optimized schedule
    /// (Section IV), exercising the real spill/fill and SCM-partition
    /// paths, and returns per-query results plus the timing report.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch or `k == 0`.
    pub fn search_batch(
        &self,
        queries: &VectorSet,
        w: usize,
        k: usize,
        alloc: ScmAllocation,
    ) -> (Vec<Vec<Neighbor>>, TimingReport) {
        self.search_batch_traced(queries, w, k, alloc, &Telemetry::disabled())
    }

    /// [`Anna::search_batch`] with a telemetry sink.
    ///
    /// When `tel` is enabled, the schedule stages are timed as spans
    /// (`accel.plan`, `accel.rounds` with one `accel.round` trace event
    /// per scheduled round, `accel.merge`) and the hardware module
    /// counters are bridged into the snapshot: `cpm.*` / `efm.*` /
    /// `scm.*` activity plus the [`PHeapStats`] of every top-k unit the
    /// batch touched, accumulated commutatively across rounds and the
    /// final merge into `pheap.*` counters. Results are bit-identical to
    /// the uninstrumented run.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch or `k == 0`.
    pub fn search_batch_traced(
        &self,
        queries: &VectorSet,
        w: usize,
        k: usize,
        alloc: ScmAllocation,
        tel: &Telemetry,
    ) -> (Vec<Vec<Neighbor>>, TimingReport) {
        assert!(k > 0, "k must be positive");
        assert_eq!(queries.dim(), self.index.dim(), "query dimension mismatch");
        let workload = {
            let _span = tel.span("accel.plan");
            self.plan_batch(queries, w, k)
        };
        let plan = anna_plan::plan(&self.cfg.plan_params(), &workload, alloc);
        let g = plan.scm_per_query;
        let record = self.cfg.topk_record_bytes;
        let timed = tel.is_enabled();
        let mut pheap_total = PHeapStats::default();
        let (mut scm_cycles, mut scm_vectors, mut scm_lut_reads) = (0.0f64, 0u64, 0u64);

        let mut cpm = Cpm::new(self.cfg.n_cu);
        let mut efm = Efm::new(self.cfg.encoded_buffer_bytes);

        // Cluster-invariant inner-product base LUTs, one per query.
        let ip_bases: Option<Vec<Lut>> = match self.index.metric() {
            Metric::InnerProduct => Some(
                queries
                    .iter()
                    .map(|q| cpm.build_ip_lut(q, self.index.codebook()))
                    .collect(),
            ),
            Metric::L2 => None,
        };

        // Spilled partial top-k state per query: one record set per SCM
        // partition.
        let b = queries.len();
        let mut spilled: Vec<Vec<Vec<Neighbor>>> = vec![Vec::new(); b];

        {
            let _span = tel.span("accel.rounds");
            for round in &plan.rounds {
                let start = if timed { tel.now_ns() } else { 0 };
                for &qi in &round.queries {
                    let q = queries.row(qi);
                    let lut = self.cpm_lut(
                        &mut cpm,
                        ip_bases.as_ref().map(|v| &v[qi]),
                        q,
                        round.cluster,
                    );
                    // Fill partial units from memory (or start empty).
                    let mut scms: Vec<Scm> = if spilled[qi].is_empty() {
                        (0..g).map(|_| Scm::new(self.cfg.n_u, k)).collect()
                    } else {
                        spilled[qi]
                            .drain(..)
                            .map(|records| {
                                let mut scm = Scm::new(self.cfg.n_u, k);
                                scm.fill(&records, record);
                                scm
                            })
                            .collect()
                    };
                    self.scan_cluster(&mut efm, &mut scms, round.cluster, &lut);
                    // Spill back to memory for the query's next round.
                    spilled[qi] = scms.iter_mut().map(|s| s.spill(record)).collect();
                    if timed {
                        // The SCM instances are per-round throwaways; fold
                        // their counters before they drop (commutative, so
                        // the totals are schedule-invariant).
                        for scm in &mut scms {
                            let s = scm.stats();
                            scm_cycles += s.cycles;
                            scm_vectors += s.vectors_scored;
                            scm_lut_reads += s.lut_reads;
                            pheap_total.accumulate(&scm.topk_mut().stats());
                        }
                    }
                }
                if timed {
                    let dur = tel.now_ns().saturating_sub(start);
                    tel.trace_event_ns("accel.round", round.cluster as u64, start, dur);
                }
            }
        }

        // Final merge per query.
        let _span = tel.span("accel.merge");
        let results: Vec<Vec<Neighbor>> = spilled
            .into_iter()
            .map(|parts| {
                let mut merged = PHeap::new(k);
                for records in parts {
                    let mut h = PHeap::new(k);
                    h.fill(&records, record);
                    if timed {
                        pheap_total.accumulate(&h.stats());
                    }
                    merged.merge_from(&mut h);
                }
                if timed {
                    pheap_total.accumulate(&merged.stats());
                }
                merged.drain_sorted()
            })
            .collect();
        drop(_span);

        if timed {
            let cpm_stats = cpm.stats();
            tel.counter_add("cpm.cycles", cpm_stats.cycles as u64);
            tel.counter_add("cpm.madds", cpm_stats.madds);
            tel.counter_add("cpm.luts_built", cpm_stats.luts_built);
            let efm_stats = efm.stats();
            tel.counter_add("efm.clusters_fetched", efm_stats.clusters_fetched);
            tel.counter_add("efm.code_bytes", efm_stats.code_bytes);
            tel.counter_add("efm.meta_bytes", efm_stats.meta_bytes);
            tel.counter_add("efm.identifiers_unpacked", efm_stats.identifiers_unpacked);
            tel.counter_add("efm.segments", efm_stats.segments);
            tel.counter_add("scm.cycles", scm_cycles as u64);
            tel.counter_add("scm.vectors_scored", scm_vectors);
            tel.counter_add("scm.lut_reads", scm_lut_reads);
            tel.counter_add("pheap.inputs", pheap_total.inputs);
            tel.counter_add("pheap.accepted", pheap_total.accepted);
            tel.counter_add("pheap.spills", pheap_total.spills);
            tel.counter_add("pheap.spill_bytes", pheap_total.spill_bytes);
            tel.counter_add("pheap.fills", pheap_total.fills);
            tel.counter_add("pheap.fill_bytes", pheap_total.fill_bytes);
        }

        // Price timing off the very plan just executed, so the report's
        // traffic matches the functional run's schedule exactly.
        let timing = analytic::batch_plan(&self.cfg, &workload, &plan);
        (results, timing)
    }
}

/// The result of a multi-instance scale-out run (the paper's "ANNA ×12").
#[derive(Debug, Clone)]
pub struct ScaleOutReport {
    /// Instances used.
    pub instances: usize,
    /// Per-instance timing reports (round-robin query partition).
    pub per_instance: Vec<TimingReport>,
    /// Total queries across instances.
    pub total_queries: usize,
    /// Batch makespan in seconds (the slowest instance).
    pub makespan_seconds: f64,
}

impl ScaleOutReport {
    /// Aggregate throughput: all queries / the slowest instance's time.
    pub fn qps(&self) -> f64 {
        self.total_queries as f64 / self.makespan_seconds
    }

    /// Load imbalance: slowest instance time over the mean (1.0 =
    /// perfectly balanced). Skewed cluster populations raise this.
    pub fn imbalance(&self) -> f64 {
        if self.per_instance.is_empty() {
            return 1.0;
        }
        let mean = self.per_instance.iter().map(|r| r.cycles).sum::<f64>()
            / self.per_instance.len() as f64;
        let max = self
            .per_instance
            .iter()
            .map(|r| r.cycles)
            .fold(0.0f64, f64::max);
        max / mean.max(1.0)
    }
}

/// Runs `instances` identical ANNA accelerators, each with its own memory
/// system, splitting a batch round-robin (the paper's "ANNA ×12"
/// comparison against the V100, Section V-B).
///
/// # Panics
///
/// Panics if `instances == 0`.
pub fn scale_out(
    cfg: &AnnaConfig,
    workload: &BatchWorkload,
    alloc: ScmAllocation,
    instances: usize,
) -> ScaleOutReport {
    assert!(instances > 0, "need at least one instance");
    let mut per_instance = Vec::new();
    let mut total = 0usize;
    let mut makespan = 0.0f64;
    for inst in 0..instances {
        let visits: Vec<Vec<usize>> = workload
            .visits
            .iter()
            .enumerate()
            .filter(|(q, _)| q % instances == inst)
            .map(|(_, v)| v.clone())
            .collect();
        if visits.is_empty() {
            continue;
        }
        let sub = BatchWorkload {
            shape: workload.shape,
            cluster_sizes: workload.cluster_sizes.clone(),
            visits,
        };
        let r = analytic::batch(cfg, &sub, alloc);
        total += r.queries;
        makespan = makespan.max(r.seconds(cfg));
        per_instance.push(r);
    }
    ScaleOutReport {
        instances,
        per_instance,
        total_queries: total,
        makespan_seconds: makespan,
    }
}

/// Aggregate throughput of `instances` accelerators — convenience wrapper
/// around [`scale_out`].
///
/// # Panics
///
/// Panics if `instances == 0`.
pub fn scale_out_qps(
    cfg: &AnnaConfig,
    workload: &BatchWorkload,
    alloc: ScmAllocation,
    instances: usize,
) -> f64 {
    if workload.b() == 0 {
        return 0.0;
    }
    scale_out(cfg, workload, alloc, instances).qps()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anna_index::{IvfPqConfig, LutPrecision, SearchParams};

    fn setup(metric: Metric) -> (VectorSet, IvfPqIndex) {
        let data = VectorSet::from_fn(8, 800, |r, c| {
            let blob = (r % 10) as f32;
            blob * 15.0 + ((r * 31 + c * 7) % 10) as f32 * 0.3
        });
        let index = IvfPqIndex::build(
            &data,
            &IvfPqConfig {
                metric,
                num_clusters: 10,
                m: 4,
                kstar: 16,
                ..IvfPqConfig::default()
            },
        );
        (data, index)
    }

    #[test]
    fn functional_matches_software_reference() {
        // ANNA's datapath (f16 LUT + P-heap) must agree with the software
        // reference at the same precision.
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let params = SearchParams {
            nprobe: 4,
            k: 8,
            lut_precision: LutPrecision::F16,
        };
        for row in [3usize, 99, 400, 777] {
            let (hw, _) = anna.search(data.row(row), 4, 8);
            let sw = index.search(data.row(row), &params);
            let hw_ids: Vec<u64> = hw.iter().map(|n| n.id).collect();
            let sw_ids: Vec<u64> = sw.iter().map(|n| n.id).collect();
            // Scores pass through f16 in hardware; ids of the top set must
            // match as sets (ties may reorder within equal f16 scores).
            let mut a = hw_ids.clone();
            let mut b = sw_ids.clone();
            a.sort_unstable();
            b.sort_unstable();
            // Compare scores instead where id sets differ due to f16 ties.
            if a != b {
                for (x, y) in hw.iter().zip(&sw) {
                    assert!(
                        (x.score - y.score).abs() <= 0.01 * (1.0 + y.score.abs()),
                        "rank score mismatch: {x:?} vs {y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_matches_single_query_results() {
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let rows = [0usize, 50, 333, 799];
        let queries = data.gather(&rows);
        let (batched, _) = anna.search_batch(
            &queries,
            3,
            6,
            ScmAllocation::IntraQuery { scm_per_query: 4 },
        );
        for (bi, &row) in rows.iter().enumerate() {
            let (single, _) = anna.search(data.row(row), 3, 6);
            let b_ids: Vec<u64> = batched[bi].iter().map(|n| n.id).collect();
            let s_ids: Vec<u64> = single.iter().map(|n| n.id).collect();
            assert_eq!(b_ids, s_ids, "row {row}");
        }
    }

    #[test]
    fn inner_product_paths_work() {
        let (data, index) = setup(Metric::InnerProduct);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let queries = data.gather(&[1, 2]);
        let (res, timing) = anna.search_batch(&queries, 3, 5, ScmAllocation::Auto);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].len(), 5);
        assert!(timing.cycles > 0.0);
    }

    #[test]
    fn traced_batch_bridges_module_counters_without_changing_results() {
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let queries = data.gather(&(0..24).collect::<Vec<_>>());
        let alloc = ScmAllocation::IntraQuery { scm_per_query: 4 };
        let tel = Telemetry::enabled();
        let (traced, _) = anna.search_batch_traced(&queries, 3, 6, alloc, &tel);
        let (plain, _) = anna.search_batch(&queries, 3, 6, alloc);
        assert_eq!(traced, plain, "telemetry must not perturb results");
        let snap = tel.snapshot_json().unwrap();
        for key in [
            "\"cpm.cycles\"",
            "\"cpm.luts_built\"",
            "\"efm.code_bytes\"",
            "\"efm.clusters_fetched\"",
            "\"scm.vectors_scored\"",
            "\"pheap.inputs\"",
            "\"pheap.spills\"",
            "\"pheap.fills\"",
        ] {
            assert!(snap.contains(key), "missing {key} in {snap}");
        }
        // The batch visits clusters, so the bridged activity is non-zero.
        assert!(!snap.contains("\"pheap.inputs\":0,"), "{snap}");
        // Stage spans made it onto the timeline.
        let trace = tel.chrome_trace_json().unwrap();
        for name in ["accel.plan", "accel.rounds", "accel.round", "accel.merge"] {
            assert!(trace.contains(name), "missing {name} span");
        }
    }

    #[test]
    fn timing_reports_are_consistent() {
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let (_, single) = anna.search(data.row(0), 4, 8);
        assert_eq!(single.queries, 1);
        assert!(single.traffic.code_bytes > 0);
        let queries = data.gather(&(0..32).collect::<Vec<_>>());
        let (_, batched) = anna.search_batch(&queries, 4, 8, ScmAllocation::Auto);
        assert_eq!(batched.queries, 32);
        // The optimization can only reduce code traffic vs 32 single runs.
        assert!(batched.traffic.code_bytes <= 32 * single.traffic.code_bytes);
    }

    #[test]
    fn module_activity_matches_timing_model() {
        // The functional modules and the analytic engine must agree on the
        // CPM work a single L2 query implies.
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let q = data.row(5);
        let mut cpm = Cpm::new(anna.config().n_cu);
        let selected = cpm.filter_clusters(q, index.centroids(), index.metric(), 4);
        for &cid in &selected {
            let _ = cpm.build_l2_lut(q, index.centroids().row(cid), index.codebook());
        }
        let (_, timing) = anna.search(q, 4, 8);
        assert!(
            (cpm.stats().cycles - timing.activity.cpm_cycles).abs()
                < 1e-6 * timing.activity.cpm_cycles.max(1.0),
            "module CPM cycles {} vs engine {}",
            cpm.stats().cycles,
            timing.activity.cpm_cycles
        );
    }

    #[test]
    fn efm_code_traffic_matches_timing_model() {
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let q = data.row(9);
        let mut cpm = Cpm::new(anna.config().n_cu);
        let mut efm = Efm::new(anna.config().encoded_buffer_bytes);
        let selected = cpm.filter_clusters(q, index.centroids(), index.metric(), 4);
        for &cid in &selected {
            let _ = efm.fetch(index.cluster(cid));
        }
        let (_, timing) = anna.search(q, 4, 8);
        assert_eq!(efm.stats().code_bytes, timing.traffic.code_bytes);
    }

    #[test]
    fn rejects_unsupported_kstar() {
        let data = VectorSet::from_fn(8, 200, |r, c| ((r + c) % 7) as f32);
        let index = IvfPqIndex::build(
            &data,
            &IvfPqConfig {
                num_clusters: 4,
                m: 4,
                kstar: 16,
                ..IvfPqConfig::default()
            },
        );
        // Valid case builds fine...
        assert!(Anna::new(AnnaConfig::paper(), &index).is_ok());
        // ...and an invalid config is rejected.
        let bad = AnnaConfig {
            n_u: 0,
            ..AnnaConfig::paper()
        };
        assert!(Anna::new(bad, &index).is_err());
    }

    #[test]
    fn scale_out_increases_throughput() {
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let queries = data.gather(&(0..64).collect::<Vec<_>>());
        let workload = anna.plan_batch(&queries, 4, 8);
        let one = scale_out_qps(anna.config(), &workload, ScmAllocation::Auto, 1);
        let twelve = scale_out_qps(anna.config(), &workload, ScmAllocation::Auto, 12);
        assert!(
            twelve > one,
            "12 instances ({twelve}) should beat one ({one})"
        );
    }

    #[test]
    fn scale_out_report_accounts_every_query() {
        let (data, index) = setup(Metric::L2);
        let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
        let queries = data.gather(&(0..50).collect::<Vec<_>>());
        let workload = anna.plan_batch(&queries, 4, 8);
        let report = scale_out(anna.config(), &workload, ScmAllocation::Auto, 7);
        assert_eq!(report.total_queries, 50);
        assert_eq!(report.per_instance.len(), 7);
        let per_instance_sum: usize = report.per_instance.iter().map(|r| r.queries).sum();
        assert_eq!(per_instance_sum, 50);
        assert!(report.imbalance() >= 1.0);
        assert!(report.qps() > 0.0);
        // Makespan equals the slowest instance.
        let slowest = report
            .per_instance
            .iter()
            .map(|r| r.seconds(anna.config()))
            .fold(0.0f64, f64::max);
        assert!((report.makespan_seconds - slowest).abs() < 1e-12);
    }
}
