//! Cycle-stepped microarchitectural engine for the baseline (single-query)
//! pipeline.
//!
//! Unlike [`crate::engine::analytic`] (closed form) and
//! [`crate::engine::cycle`] (event-driven), this engine advances every
//! clock cycle and moves data through explicit module state machines:
//! a FCFS memory channel delivering `bytes_per_cycle`, the CPM as a serial
//! compute resource, double-buffered encoded-vector and LUT buffers, and
//! an SCM group that can only consume vectors that have actually arrived.
//!
//! Its unique output is the **stall breakdown**: every cycle of the scan
//! phase is attributed to exactly one of {scm busy, waiting on data,
//! waiting on LUT, pipeline drain}, which is how an architect would locate
//! the bottleneck the paper's Section IV-B balance equation talks about.
//! Runtime is O(total cycles), so use it for validation-sized runs (it
//! happily steps a few million cycles; the other engines cover sweeps).

use anna_plan::{BatchPlan, ScmAllocation};
use anna_vector::Metric;
use serde::Serialize;

use crate::config::AnnaConfig;
use crate::engine::analytic::{CLUSTER_META_BYTES, QUERY_ID_BYTES};
use crate::timing::QueryWorkload;

/// Per-cycle attribution of the scan phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct StallBreakdown {
    /// Cycles the SCM group spent scoring vectors.
    pub scm_busy: u64,
    /// Cycles stalled because the current cluster's data had not arrived.
    pub scm_wait_data: u64,
    /// Cycles stalled because the current cluster's LUT was not ready.
    pub scm_wait_lut: u64,
    /// Cycles after the last vector was scored (drain/merge/result store).
    pub drain: u64,
    /// Cycles the memory channel was transferring.
    pub mem_busy: u64,
    /// Cycles the CPM was computing (filter + residual + LUT fill).
    pub cpm_busy: u64,
}

/// The cycle-stepped result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SteppedReport {
    /// End-to-end cycles (integer — this engine steps whole clocks).
    pub cycles: u64,
    /// Cycles of the cluster-filtering phase.
    pub filter_cycles: u64,
    /// Stall attribution.
    pub stalls: StallBreakdown,
    /// Total DRAM bytes moved.
    pub traffic_bytes: u64,
    /// Cluster code fetches actually issued by the state machine.
    pub clusters_fetched: u64,
    /// Encoded vectors whose scan the state machine completed (per
    /// SCM-group, summed across rounds).
    pub scan_work: u64,
}

impl SteppedReport {
    /// Memory-channel utilization over the whole run.
    pub fn memory_utilization(&self) -> f64 {
        self.stalls.mem_busy as f64 / self.cycles.max(1) as f64
    }
}

/// A FCFS memory channel delivering fractional bytes per cycle.
#[derive(Debug)]
struct Channel {
    bpc: f64,
    /// Outstanding transfers: (tag, bytes remaining).
    queue: std::collections::VecDeque<(usize, f64)>,
    /// Bytes delivered per tag.
    delivered: Vec<f64>,
    busy_cycles: u64,
    total_bytes: u64,
}

impl Channel {
    fn new(bpc: f64, tags: usize) -> Self {
        Self {
            bpc,
            queue: std::collections::VecDeque::new(),
            delivered: vec![0.0; tags],
            busy_cycles: 0,
            total_bytes: 0,
        }
    }

    fn request(&mut self, tag: usize, bytes: u64) {
        if bytes > 0 {
            self.queue.push_back((tag, bytes as f64));
            self.total_bytes += bytes;
        }
    }

    /// Advances one cycle, delivering up to `bpc` bytes to the head
    /// transfers.
    fn step(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        self.busy_cycles += 1;
        let mut budget = self.bpc;
        while budget > 0.0 {
            let Some(front) = self.queue.front_mut() else {
                break;
            };
            let take = budget.min(front.1);
            front.1 -= take;
            self.delivered[front.0] += take;
            budget -= take;
            if front.1 <= 1e-9 {
                self.queue.pop_front();
            }
        }
    }

    fn done(&self, tag: usize, total: u64) -> bool {
        self.delivered[tag] + 1e-6 >= total as f64
    }
}

/// Steps the baseline single-query pipeline to completion.
///
/// # Panics
///
/// Panics if the shape is invalid, `g` is out of range, or the run
/// exceeds an internal 2³³-cycle safety limit (which would indicate a
/// deadlock bug, not a long workload).
pub fn single_query(cfg: &AnnaConfig, w: &QueryWorkload, g: usize) -> SteppedReport {
    w.shape.assert_valid();
    assert!(g > 0 && g <= cfg.n_scm, "g={g} out of range");
    let s = &w.shape;
    let bpc = cfg.bytes_per_cycle();
    let n = w.visited_cluster_sizes.len();
    let sizes = &w.visited_cluster_sizes;
    let bytes_per_vec = s.encoded_bytes_per_vector() as u64;
    let cpv = s.scan_cycles_per_vector(cfg.n_u) as f64;
    // Vectors the SCM group consumes per cycle (may be fractional).
    let consume_rate = g as f64 / cpv;

    // Memory tags: 0 = centroids, 1..=n = cluster fetches, n+1 = result.
    let mut chan = Channel::new(bpc, n + 2);
    let mut stalls = StallBreakdown::default();

    // --- Phase 1: cluster filtering --------------------------------------
    chan.request(0, s.centroid_bytes());
    let filter_rate = cfg.n_cu as f64 / s.d as f64; // centroids scored/cycle
    let mut scored = 0.0f64;
    let mut cycle: u64 = 0;
    let total_centroids = s.num_clusters as f64;
    while scored + 1e-9 < total_centroids {
        chan.step();
        // The CPM can only score centroids whose bytes have arrived.
        let arrived = chan.delivered[0] / (2.0 * s.d as f64);
        let target = arrived.min(total_centroids);
        if scored < target {
            scored = (scored + filter_rate).min(target);
            stalls.cpm_busy += 1;
        }
        cycle += 1;
        assert!(cycle < (1 << 33), "filter phase deadlocked");
    }
    let filter_cycles = cycle;

    // --- Phase 2: per-cluster pipeline ------------------------------------
    // State per cluster.
    let lut_cost = match s.metric {
        Metric::L2 => (s.d as f64 + s.d as f64 * s.kstar as f64) / cfg.n_cu as f64,
        Metric::InnerProduct => 0.0,
    };
    let ip_lut_cost = match s.metric {
        Metric::InnerProduct => s.d as f64 * s.kstar as f64 / cfg.n_cu as f64,
        Metric::L2 => 0.0,
    };
    let fetch_bytes: Vec<u64> = sizes
        .iter()
        .map(|&z| z as u64 * bytes_per_vec + CLUSTER_META_BYTES)
        .collect();

    let mut fetch_issued = vec![false; n];
    let mut lut_done = vec![false; n];
    let mut lut_progress = vec![0.0f64; n];
    let mut scanned = vec![0.0f64; n]; // vectors consumed per cluster
    let mut scan_done = vec![n == 0; n.max(1)];
    let mut ip_lut_progress = 0.0f64;
    let mut ip_lut_done = s.metric == Metric::L2;
    let mut current = 0usize; // cluster the SCM group is working on
    let mut cpm_target = 0usize; // next LUT the CPM fills

    // In IP mode all cluster LUTs are the shared one.
    if s.metric == Metric::InnerProduct {
        for l in lut_done.iter_mut() {
            *l = false; // becomes true when the shared LUT is built
        }
    }

    let result_tag = n + 1;
    let mut result_issued = false;
    let merge_cycles = if g > 1 { ((g - 1) * s.k) as u64 } else { 0 };
    let mut merge_remaining = merge_cycles;
    let mut clusters_fetched = 0u64;
    let mut scan_work = 0u64;

    // `n` is fixed; the loop exits via the result-store `break` below.
    #[allow(clippy::while_immutable_condition)]
    while n > 0 {
        // Issue fetches when the double buffer allows: fetch i needs scan
        // of cluster i−2 to be complete.
        for i in 0..n {
            if !fetch_issued[i] && (i < 2 || scan_done[i - 2]) {
                chan.request(1 + i, fetch_bytes[i]);
                fetch_issued[i] = true;
                clusters_fetched += 1;
            }
        }

        chan.step();

        // CPM: shared IP LUT first, then per-cluster L2 LUTs (double
        // buffered: LUT i may fill once scan i−2 finished).
        let mut cpm_used = false;
        if !ip_lut_done {
            ip_lut_progress += 1.0;
            cpm_used = true;
            if ip_lut_progress >= ip_lut_cost {
                ip_lut_done = true;
                for l in lut_done.iter_mut() {
                    *l = true;
                }
            }
        } else if s.metric == Metric::L2 {
            while cpm_target < n && lut_done[cpm_target] {
                cpm_target += 1;
            }
            if cpm_target < n && (cpm_target < 2 || scan_done[cpm_target - 2]) {
                lut_progress[cpm_target] += 1.0;
                cpm_used = true;
                if lut_progress[cpm_target] >= lut_cost {
                    lut_done[cpm_target] = true;
                }
            }
        }
        if cpm_used {
            stalls.cpm_busy += 1;
        }

        // SCM group: consume the current cluster.
        if current < n {
            if !lut_done[current] {
                stalls.scm_wait_lut += 1;
            } else {
                // Vectors available: arrived bytes minus the metadata line.
                let arrived_bytes =
                    (chan.delivered[1 + current] - CLUSTER_META_BYTES as f64).max(0.0);
                let available = (arrived_bytes / bytes_per_vec as f64).min(sizes[current] as f64);
                let headroom = available - scanned[current];
                if headroom + 1e-9 >= consume_rate {
                    // Full-rate consumption: the SCM is genuinely busy.
                    scanned[current] += consume_rate;
                    stalls.scm_busy += 1;
                } else if headroom > 1e-9 {
                    // Trickle: the stream limits consumption — a data
                    // stall from the architect's point of view.
                    scanned[current] = available;
                    stalls.scm_wait_data += 1;
                } else {
                    stalls.scm_wait_data += 1;
                }
                if scanned[current] + 1e-9 >= sizes[current] as f64
                    && chan.done(1 + current, fetch_bytes[current])
                {
                    scan_done[current] = true;
                    scan_work += sizes[current] as u64;
                    current += 1;
                }
            }
        } else if merge_remaining > 0 {
            merge_remaining -= 1;
            stalls.drain += 1;
        } else {
            if !result_issued {
                chan.request(result_tag, (s.k * cfg.topk_record_bytes) as u64);
                result_issued = true;
            }
            if chan.done(result_tag, (s.k * cfg.topk_record_bytes) as u64) {
                break;
            }
            stalls.drain += 1;
        }

        cycle += 1;
        assert!(cycle < (1 << 33), "scan phase deadlocked");
    }
    if n == 0 {
        // Degenerate: no clusters; just store the (empty) result.
        chan.request(result_tag, (s.k * cfg.topk_record_bytes) as u64);
        while !chan.done(result_tag, (s.k * cfg.topk_record_bytes) as u64) {
            chan.step();
            cycle += 1;
        }
    }

    stalls.mem_busy = chan.busy_cycles;
    SteppedReport {
        cycles: cycle,
        filter_cycles,
        stalls,
        traffic_bytes: chan.total_bytes,
        clusters_fetched,
        scan_work,
    }
}

/// Steps the memory-traffic-optimized batched pipeline (Section IV) to
/// completion: cluster-major rounds with top-k fill/spill traffic, LUT
/// fills per round, and code prefetch, all contending for the same
/// cycle-stepped memory channel.
///
/// # Panics
///
/// Panics if the shape is invalid, the allocation is inconsistent, or the
/// run exceeds the 2³³-cycle deadlock limit.
pub fn batch(
    cfg: &AnnaConfig,
    w: &crate::timing::BatchWorkload,
    alloc: ScmAllocation,
) -> SteppedReport {
    let plan = anna_plan::plan(&cfg.plan_params(), w, alloc);
    batch_plan(cfg, w, &plan)
}

/// Steps the batched pipeline executing an explicit, pre-computed
/// [`BatchPlan`] (the shared IR; see
/// [`crate::engine::analytic::batch_plan`]).
///
/// # Panics
///
/// Panics if the shape is invalid, the plan references queries outside the
/// workload, or the run exceeds the 2³³-cycle deadlock limit.
pub fn batch_plan(
    cfg: &AnnaConfig,
    w: &crate::timing::BatchWorkload,
    plan: &BatchPlan,
) -> SteppedReport {
    w.shape.assert_valid();
    let s = &w.shape;
    let g = plan.scm_per_query;
    let b = w.b();
    let bpc = cfg.bytes_per_cycle();
    let bytes_per_vec = s.encoded_bytes_per_vector() as u64;
    let cpv = s.scan_cycles_per_vector(cfg.n_u) as f64;
    let consume_rate = g as f64 / cpv;
    let lut_cost_per_query = s.lut_fill_cycles(cfg.n_cu)
        + match s.metric {
            Metric::L2 => s.d as f64 / cfg.n_cu as f64,
            Metric::InnerProduct => 0.0,
        };

    let rounds = &plan.rounds;
    let n = rounds.len();
    // Memory tags: 0 centroids+lists, 1..=n per-round traffic (codes +
    // fills), n+1 result store. Spills ride the round tags of the *next*
    // round (they contend there).
    let mut chan = Channel::new(bpc, n + 2);
    let mut stalls = StallBreakdown::default();

    // Filter phase: stream centroids once, score B queries, write lists.
    let total_visits = w.total_visits();
    chan.request(0, s.centroid_bytes() + 2 * total_visits * QUERY_ID_BYTES);
    let filter_compute = s.filter_compute_cycles(cfg.n_cu) * b as f64;
    let mut cycle: u64 = 0;
    let mut compute_done = 0.0f64;
    loop {
        chan.step();
        if compute_done < filter_compute {
            compute_done += 1.0;
            stalls.cpm_busy += 1;
        }
        cycle += 1;
        let data_done = chan.done(0, s.centroid_bytes() + 2 * total_visits * QUERY_ID_BYTES);
        if compute_done >= filter_compute && data_done {
            break;
        }
        assert!(cycle < (1 << 33), "filter phase deadlocked");
    }
    let filter_cycles = cycle;

    // Round r's memory demand: codes (if it fetches) + fills for resuming
    // queries + the previous round's spills. The fill/spill counts come
    // straight from the plan, so the stepped channel moves exactly the
    // bytes the `TrafficModel` prices.
    let topk_units = plan.round_topk_units();
    let mut round_bytes = vec![0u64; n];
    let mut code_only = vec![0u64; n];
    for (ri, r) in rounds.iter().enumerate() {
        let (fills, spills) = topk_units[ri];
        let mut bytes = (fills + spills) * plan.spill_unit_bytes;
        if r.fetches_codes {
            let cb = r.cluster_size as u64 * bytes_per_vec + CLUSTER_META_BYTES;
            bytes += cb;
            code_only[ri] = cb;
        }
        round_bytes[ri] = bytes;
    }

    // Stepped execution: issue round traffic when the double buffer frees
    // (two rounds ahead max), fill LUTs serially on the CPM, scan when
    // LUT + data are ready.
    let mut issued = vec![false; n];
    let mut lut_progress = vec![0.0f64; n];
    let mut lut_done = vec![false; n];
    let mut scanned = vec![0.0f64; n];
    let mut scan_complete = vec![false; n];
    let mut current = 0usize;
    let mut cpm_next = 0usize;
    let mut result_issued = false;
    let result_bytes = (b * s.k * cfg.topk_record_bytes) as u64;
    let mut clusters_fetched = 0u64;
    let mut scan_work = 0u64;

    while current < n || !result_issued || !chan.done(n + 1, result_bytes) {
        for ri in 0..n {
            if !issued[ri] && (ri < 2 || scan_complete[ri - 2]) {
                chan.request(1 + ri, round_bytes[ri]);
                issued[ri] = true;
                if rounds[ri].fetches_codes {
                    clusters_fetched += 1;
                }
            }
        }
        chan.step();

        // CPM fills round LUTs in order, double buffered.
        while cpm_next < n && lut_done[cpm_next] {
            cpm_next += 1;
        }
        if cpm_next < n && (cpm_next < 2 || scan_complete[cpm_next - 2]) {
            lut_progress[cpm_next] += 1.0;
            stalls.cpm_busy += 1;
            if lut_progress[cpm_next] >= rounds[cpm_next].queries.len() as f64 * lut_cost_per_query
            {
                lut_done[cpm_next] = true;
            }
        }

        if current < n {
            let r = &rounds[current];
            if !lut_done[current] {
                stalls.scm_wait_lut += 1;
            } else {
                // Codes available: for fetching rounds, what has arrived;
                // re-used buffers are instantly available.
                let available = if code_only[current] > 0 {
                    let code_arrived = (chan.delivered[1 + current]
                        - (round_bytes[current] - code_only[current]) as f64
                        - CLUSTER_META_BYTES as f64)
                        .max(0.0);
                    (code_arrived / bytes_per_vec as f64).min(r.cluster_size as f64)
                } else {
                    r.cluster_size as f64
                };
                let headroom = available - scanned[current];
                if headroom + 1e-9 >= consume_rate {
                    scanned[current] += consume_rate;
                    stalls.scm_busy += 1;
                } else if headroom > 1e-9 {
                    scanned[current] = available;
                    stalls.scm_wait_data += 1;
                } else {
                    stalls.scm_wait_data += 1;
                }
                if scanned[current] + 1e-9 >= r.cluster_size as f64
                    && chan.done(1 + current, round_bytes[current])
                {
                    scan_complete[current] = true;
                    scan_work += r.cluster_size as u64;
                    current += 1;
                }
            }
        } else {
            if !result_issued {
                chan.request(n + 1, result_bytes);
                result_issued = true;
            }
            stalls.drain += 1;
        }

        cycle += 1;
        assert!(cycle < (1 << 33), "batched pipeline deadlocked");
    }

    stalls.mem_busy = chan.busy_cycles;
    SteppedReport {
        cycles: cycle,
        filter_cycles,
        stalls,
        traffic_bytes: chan.total_bytes,
        clusters_fetched,
        scan_work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analytic;
    use crate::timing::SearchShape;

    fn shape(metric: Metric) -> SearchShape {
        SearchShape {
            d: 128,
            m: 64,
            kstar: 256,
            metric,
            num_clusters: 10_000,
            k: 1000,
        }
    }

    fn query(metric: Metric, w: usize, size: usize) -> QueryWorkload {
        QueryWorkload {
            shape: shape(metric),
            visited_cluster_sizes: vec![size; w],
        }
    }

    #[test]
    fn agrees_with_analytic_engine() {
        let cfg = AnnaConfig::paper();
        for metric in [Metric::L2, Metric::InnerProduct] {
            for &(w, size) in &[(4usize, 20_000usize), (16, 5_000), (8, 100_000)] {
                let q = query(metric, w, size);
                let a = analytic::single_query(&cfg, &q, 16);
                let st = single_query(&cfg, &q, 16);
                let ratio = st.cycles as f64 / a.cycles;
                assert!(
                    (0.85..1.25).contains(&ratio),
                    "{metric} W={w} size={size}: stepped {} vs analytic {} ({ratio})",
                    st.cycles,
                    a.cycles
                );
            }
        }
    }

    #[test]
    fn stall_accounting_covers_the_scan_phase() {
        let cfg = AnnaConfig::paper();
        let q = query(Metric::L2, 8, 50_000);
        let st = single_query(&cfg, &q, 16);
        let scan_phase = st.cycles - st.filter_cycles;
        let attributed =
            st.stalls.scm_busy + st.stalls.scm_wait_data + st.stalls.scm_wait_lut + st.stalls.drain;
        assert_eq!(
            attributed, scan_phase,
            "every scan-phase cycle must be attributed"
        );
    }

    #[test]
    fn memory_bound_run_stalls_on_data() {
        // Big clusters, wide SCM group: the scan waits on the stream.
        let cfg = AnnaConfig::paper();
        let q = query(Metric::L2, 8, 100_000);
        let st = single_query(&cfg, &q, 16);
        assert!(
            st.stalls.scm_wait_data > st.stalls.scm_busy,
            "expected data stalls to dominate: {:?}",
            st.stalls
        );
        assert!(
            st.memory_utilization() > 0.8,
            "memory should be nearly saturated"
        );
    }

    #[test]
    fn compute_bound_run_keeps_scm_busy() {
        // Narrow reduction tree and a single SCM: compute dominates.
        let cfg = AnnaConfig {
            n_u: 8,
            ..AnnaConfig::paper()
        };
        let q = query(Metric::L2, 8, 50_000);
        let st = single_query(&cfg, &q, 1);
        assert!(
            st.stalls.scm_busy > 4 * st.stalls.scm_wait_data,
            "expected SCM-busy to dominate: {:?}",
            st.stalls
        );
    }

    #[test]
    fn traffic_matches_analytic_traffic() {
        let cfg = AnnaConfig::paper();
        let q = query(Metric::L2, 8, 30_000);
        let a = analytic::single_query(&cfg, &q, 16);
        let st = single_query(&cfg, &q, 16);
        assert_eq!(st.traffic_bytes, a.traffic.total());
    }

    #[test]
    fn batched_mode_agrees_with_analytic() {
        use crate::timing::BatchWorkload;
        let cfg = AnnaConfig::paper();
        let workload = BatchWorkload {
            shape: shape(Metric::L2),
            cluster_sizes: vec![20_000; 64],
            visits: (0..48)
                .map(|q| {
                    let mut v: Vec<usize> = (0..4).map(|i| (q * 7 + i * 11) % 64).collect();
                    v.sort_unstable();
                    v.dedup();
                    v
                })
                .collect(),
        };
        let a = crate::engine::analytic::batch(&cfg, &workload, ScmAllocation::InterQuery);
        let st = batch(&cfg, &workload, ScmAllocation::InterQuery);
        let ratio = st.cycles as f64 / a.cycles;
        assert!(
            (0.8..1.3).contains(&ratio),
            "stepped {} vs analytic {} ({ratio})",
            st.cycles,
            a.cycles
        );
        assert_eq!(st.traffic_bytes, a.traffic.total());
        // Attribution covers the post-filter phase.
        let post = st.cycles - st.filter_cycles;
        let attributed =
            st.stalls.scm_busy + st.stalls.scm_wait_data + st.stalls.scm_wait_lut + st.stalls.drain;
        assert_eq!(attributed, post);
    }

    #[test]
    fn batched_l2_shows_lut_pressure_with_many_queries_per_round() {
        // Many queries per round at L2 means the CPM must fill many LUTs
        // per round; with a slow CPM the scan stalls on LUTs.
        use crate::timing::BatchWorkload;
        let slow_cpm = AnnaConfig {
            n_cu: 4,
            ..AnnaConfig::paper()
        };
        let workload = BatchWorkload {
            shape: shape(Metric::L2),
            cluster_sizes: vec![2_000; 8],
            visits: (0..64).map(|q| vec![q % 8]).collect(),
        };
        let st = batch(&slow_cpm, &workload, ScmAllocation::InterQuery);
        assert!(
            st.stalls.scm_wait_lut > st.stalls.scm_busy,
            "expected LUT stalls to dominate with a 4-unit CPM: {:?}",
            st.stalls
        );
    }

    #[test]
    fn ip_skips_lut_stalls() {
        let cfg = AnnaConfig::paper();
        let q = query(Metric::InnerProduct, 8, 30_000);
        let st = single_query(&cfg, &q, 16);
        // After the one-time shared LUT, no per-cluster LUT waits occur;
        // allow only the initial build window.
        let ip_lut = 128.0 * 256.0 / 96.0;
        assert!(
            (st.stalls.scm_wait_lut as f64) <= ip_lut + 1.0,
            "unexpected LUT stalls: {:?}",
            st.stalls
        );
    }
}
