//! Timing engines.
//!
//! * [`analytic`] — closed-form cycle counts from the paper's formulas
//!   (fast; used for parameter sweeps).
//! * [`cycle`] — event-driven, per-module simulation with explicit double
//!   buffering and a serializing memory channel (used for validation and
//!   detailed runs).
//! * [`stepped`] — cycle-stepped microarchitectural simulation of the
//!   single-query pipeline with per-cycle stall attribution (used to
//!   locate bottlenecks and triple-validate the other two).
//!
//! All three are cross-validated in tests.

pub mod analytic;
pub mod cycle;
pub mod stepped;
