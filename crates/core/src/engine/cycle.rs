//! Event-driven cycle-level engine.
//!
//! Where [`crate::engine::analytic`] charges each pipeline stage
//! `max(compute, memory)` in closed form, this engine tracks every module
//! as a resource with an explicit busy-until time and every DRAM transfer
//! through a serializing memory channel, honoring:
//!
//! * the double-buffered encoded-vector buffers (fetch `i` may not start
//!   before the buffer that fetch `i−2` used is released by its scan);
//! * the double-buffered LUT SRAMs (fill `i` waits for scan `i−2`);
//! * the serial CPM (one LUT fill / residual / filter at a time);
//! * streaming scans (a scan cannot finish before its cluster's fetch
//!   finishes, and cannot start before the first buffer-sized chunk has
//!   arrived);
//! * FCFS contention on the single memory channel.
//!
//! The two engines are cross-validated by tests; they are expected to agree
//! within a few percent, with the event-driven engine never faster than
//! the larger of the pure-compute / pure-memory bounds.

use anna_plan::{BatchPlan, ScmAllocation, TrafficModel};
use anna_vector::Metric;

use crate::config::AnnaConfig;
use crate::engine::analytic::{CLUSTER_META_BYTES, QUERY_ID_BYTES};
use crate::timing::{Activity, BatchWorkload, QueryWorkload, TimingReport, TrafficReport};

/// A serializing DRAM channel delivering `bpc` bytes per cycle.
#[derive(Debug, Clone)]
struct MemChannel {
    free_at: f64,
    bpc: f64,
    bytes_moved: u64,
}

impl MemChannel {
    fn new(bpc: f64) -> Self {
        Self {
            free_at: 0.0,
            bpc,
            bytes_moved: 0,
        }
    }

    /// Issues a transfer that may start at `ready`; returns (start, end).
    fn transfer(&mut self, ready: f64, bytes: u64) -> (f64, f64) {
        let start = ready.max(self.free_at);
        let end = start + bytes as f64 / self.bpc;
        self.free_at = end;
        self.bytes_moved += bytes;
        (start, end)
    }
}

/// Simulates one query in baseline mode with `g` SCMs (mirror of
/// [`crate::engine::analytic::single_query`]).
///
/// # Panics
///
/// Panics if the shape is invalid or `g` is out of range.
pub fn single_query(cfg: &AnnaConfig, w: &QueryWorkload, g: usize) -> TimingReport {
    w.shape.assert_valid();
    assert!(g > 0 && g <= cfg.n_scm, "g={g} out of range");
    let s = &w.shape;
    let mut mem = MemChannel::new(cfg.bytes_per_cycle());
    let cpv = s.scan_cycles_per_vector(cfg.n_u) as f64;
    let bytes_per_vec = s.encoded_bytes_per_vector() as u64;
    let lut_one = s.lut_fill_cycles(cfg.n_cu);
    let residual = s.d as f64 / cfg.n_cu as f64;

    // Step 1: stream centroids; the CPM consumes them as they arrive.
    let (_, centroid_end) = mem.transfer(0.0, s.centroid_bytes());
    let filter_compute = s.filter_compute_cycles(cfg.n_cu);
    let filter_done = centroid_end.max(filter_compute);
    let mut cpm_free = filter_done;
    let mut cpm_busy = filter_compute;

    // Inner product: single LUT build after filtering.
    let mut ip_lut_done = filter_done;
    if s.metric == Metric::InnerProduct {
        ip_lut_done = cpm_free + lut_one;
        cpm_free = ip_lut_done;
        cpm_busy += lut_one;
    }

    let sizes = &w.visited_cluster_sizes;
    let n = sizes.len();
    let mut scan_end = vec![0.0f64; n];
    let mut fetch_end = vec![0.0f64; n];
    let mut data_ready = vec![0.0f64; n];
    let mut lut_done = vec![0.0f64; n];
    let mut scm_busy = 0.0f64;

    for i in 0..n {
        // Encoded-vector buffer double buffering: fetch i waits for the
        // buffer used by fetch i−2.
        let buf_free = if i >= 2 { scan_end[i - 2] } else { filter_done };
        let bytes = sizes[i] as u64 * bytes_per_vec + CLUSTER_META_BYTES;
        let (fs, fe) = mem.transfer(buf_free, bytes);
        fetch_end[i] = fe;
        let first_chunk = (cfg.encoded_buffer_bytes as u64).min(bytes);
        data_ready[i] = fs + first_chunk as f64 / mem.bpc;

        // LUT double buffering: fill i waits for scan i−2; the CPM is
        // serial.
        lut_done[i] = match s.metric {
            Metric::L2 => {
                let lut_buf_free = if i >= 2 { scan_end[i - 2] } else { filter_done };
                let start = cpm_free.max(lut_buf_free);
                let dur = lut_one + residual;
                cpm_free = start + dur;
                cpm_busy += dur;
                cpm_free
            }
            Metric::InnerProduct => ip_lut_done,
        };

        // Scan: needs the SCM group (serial across clusters), the LUT, and
        // the first chunk of data; cannot finish before the fetch does.
        let prev_scan = if i > 0 { scan_end[i - 1] } else { filter_done };
        let start = prev_scan.max(lut_done[i]).max(data_ready[i]);
        let dur = ((sizes[i] as f64) / g as f64).ceil() * cpv;
        scan_end[i] = (start + dur).max(fetch_end[i]);
        scm_busy += dur;
    }

    let after_scans = if n > 0 { scan_end[n - 1] } else { filter_done };
    let merge = if g > 1 {
        (g as f64 - 1.0) * s.k as f64
    } else {
        0.0
    };
    let result_bytes = (s.k * cfg.topk_record_bytes) as u64;
    let (_, end) = mem.transfer(after_scans + merge, result_bytes);

    let code_bytes: u64 = sizes.iter().map(|&z| z as u64 * bytes_per_vec).sum();
    let traffic = TrafficReport {
        centroid_bytes: s.centroid_bytes(),
        cluster_meta_bytes: CLUSTER_META_BYTES * n as u64,
        code_bytes,
        topk_spill_bytes: 0,
        topk_fill_bytes: 0,
        query_list_bytes: 0,
        rerank_candidate_bytes: 0,
        rerank_vector_bytes: 0,
        result_bytes,
    };
    let compute_cycles = cpm_busy + scm_busy + merge;
    let memory_cycles = traffic.total() as f64 / mem.bpc;

    TimingReport {
        cycles: end,
        filter_cycles: filter_done,
        compute_cycles,
        memory_cycles,
        traffic,
        activity: Activity {
            cpm_cycles: cpm_busy,
            scm_cycles: scm_busy * g as f64,
            topk_inputs: w.vectors_scanned() as f64,
        },
        clusters_fetched: n as u64,
        scan_work: w.vectors_scanned(),
        queries: 1,
    }
}

/// One round's event times, for timeline rendering (the executable
/// counterpart of the paper's Figure 7).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RoundTrace {
    /// Round index in schedule order.
    pub round: usize,
    /// Cluster processed.
    pub cluster: usize,
    /// Queries processed this round.
    pub queries: usize,
    /// Code-fetch window (None when the cluster was already buffered).
    pub fetch: Option<(f64, f64)>,
    /// CPM LUT-fill window.
    pub lut: (f64, f64),
    /// SCM scan window.
    pub scan: (f64, f64),
}

/// Simulates a memory-traffic-optimized batch (mirror of
/// [`crate::engine::analytic::batch`]).
///
/// # Panics
///
/// Panics if the shape is invalid or the allocation is inconsistent.
pub fn batch(cfg: &AnnaConfig, w: &BatchWorkload, alloc: ScmAllocation) -> TimingReport {
    batch_traced(cfg, w, alloc).0
}

/// Simulates a batch executing an explicit, pre-computed [`BatchPlan`]
/// (the shared IR; see [`crate::engine::analytic::batch_plan`]).
///
/// # Panics
///
/// Panics if the shape is invalid or the plan references queries outside
/// the workload.
pub fn batch_plan(cfg: &AnnaConfig, w: &BatchWorkload, plan: &BatchPlan) -> TimingReport {
    batch_plan_traced(cfg, w, plan).0
}

/// Like [`fn@batch`], additionally returning per-round event windows — the
/// data behind the paper's Figure 7 steady-state timeline.
///
/// # Panics
///
/// Panics if the shape is invalid or the allocation is inconsistent.
pub fn batch_traced(
    cfg: &AnnaConfig,
    w: &BatchWorkload,
    alloc: ScmAllocation,
) -> (TimingReport, Vec<RoundTrace>) {
    let plan = anna_plan::plan(&cfg.plan_params(), w, alloc);
    batch_plan_traced(cfg, w, &plan)
}

/// Like [`fn@batch_plan`], additionally returning per-round event windows.
///
/// # Panics
///
/// Panics if the shape is invalid or the plan references queries outside
/// the workload.
pub fn batch_plan_traced(
    cfg: &AnnaConfig,
    w: &BatchWorkload,
    plan: &BatchPlan,
) -> (TimingReport, Vec<RoundTrace>) {
    w.shape.assert_valid();
    let s = &w.shape;
    let g = plan.scm_per_query;
    let b = w.b();
    let mut mem = MemChannel::new(cfg.bytes_per_cycle());
    let cpv = s.scan_cycles_per_vector(cfg.n_u) as f64;
    let bytes_per_vec = s.encoded_bytes_per_vector() as u64;
    let lut_one = s.lut_fill_cycles(cfg.n_cu)
        + match s.metric {
            Metric::L2 => s.d as f64 / cfg.n_cu as f64,
            Metric::InnerProduct => 0.0,
        };

    // Phase 1: batched cluster filtering + query-list writes.
    let (_, centroid_end) = mem.transfer(0.0, s.centroid_bytes());
    let total_visits = w.total_visits();
    let (_, list_end) = mem.transfer(centroid_end, total_visits * QUERY_ID_BYTES);
    let filter_compute = s.filter_compute_cycles(cfg.n_cu) * b as f64;
    let filter_done = list_end.max(filter_compute);
    let mut cpm_free = filter_done;
    let mut cpm_busy = filter_compute;

    // Read the lists back for scheduling (overlapped with first fetches).
    let (_, _lists_read_end) = mem.transfer(filter_done, total_visits * QUERY_ID_BYTES);

    let rounds = &plan.rounds;
    let n = rounds.len();
    let mut scan_end = vec![0.0f64; n];
    let mut scm_busy = 0.0f64;
    // Per-round fill/spill counts come from the plan itself, so the
    // simulated transfers price exactly what the `TrafficModel` predicts.
    let topk_units = plan.round_topk_units();

    // Fetch-order double buffering: map each fetching round to its fetch
    // index and remember when the cluster occupying that buffer is
    // released (after the last round scanning it).
    let mut fetch_release: Vec<f64> = Vec::new(); // release time per fetch idx
    let mut fetch_idx_of_round = vec![usize::MAX; n];
    let mut last_round_of_fetch: Vec<usize> = Vec::new();
    {
        let mut fi = 0usize;
        for (ri, r) in rounds.iter().enumerate() {
            if r.fetches_codes {
                fetch_idx_of_round[ri] = fi;
                last_round_of_fetch.push(ri);
                fi += 1;
            } else {
                *last_round_of_fetch
                    .last_mut()
                    .expect("non-fetching first round") = ri;
                fetch_idx_of_round[ri] = fi - 1;
            }
        }
        fetch_release.resize(fi, 0.0);
    }

    let mut data_ready = vec![0.0f64; n]; // per round: cluster data usable
    let mut fetch_end_of = vec![0.0f64; n];
    let mut spill_bytes = 0u64;
    let mut fill_bytes = 0u64;
    let mut code_bytes = 0u64;
    let mut meta_bytes = 0u64;
    let mut topk_inputs = 0.0f64;
    let mut prev_scan_start = filter_done;
    let mut traces: Vec<RoundTrace> = Vec::with_capacity(n);
    // Spill of round r is issued after round r+1's prefetch so that the
    // EFM's next-cluster prefetch is not blocked behind a transfer that
    // cannot start until the current scan ends (the MAI arbitrates; a
    // not-yet-ready spill must not head-of-line-block the stream).
    let mut pending_spill: Option<(f64, u64)> = None;

    for ri in 0..n {
        let r = &rounds[ri];
        let fi = fetch_idx_of_round[ri];
        let mut fetch_window = None;

        if r.fetches_codes {
            // Wait for the buffer two fetches back.
            let buf_free = if fi >= 2 {
                // Release = scan end of the last round of fetch fi−2.
                fetch_release[fi - 2]
            } else {
                filter_done
            };
            let bytes = r.cluster_size as u64 * bytes_per_vec + CLUSTER_META_BYTES;
            let (fs, fe) = mem.transfer(buf_free, bytes);
            let first_chunk = (cfg.encoded_buffer_bytes as u64).min(bytes);
            data_ready[ri] = fs + first_chunk as f64 / mem.bpc;
            fetch_end_of[ri] = fe;
            code_bytes += r.cluster_size as u64 * bytes_per_vec;
            meta_bytes += CLUSTER_META_BYTES;
            fetch_window = Some((fs, fe));
        } else {
            // Same buffer as the previous round of this cluster.
            data_ready[ri] = data_ready[ri - 1];
            fetch_end_of[ri] = fetch_end_of[ri - 1];
        }

        // Previous round's spill goes out behind this round's prefetch.
        if let Some((ready, bytes)) = pending_spill.take() {
            mem.transfer(ready, bytes);
        }

        // Top-k fills for queries resuming in this round.
        let mut fill_end = filter_done;
        let fill_bytes_total = topk_units[ri].0 * plan.spill_unit_bytes;
        if fill_bytes_total > 0 {
            // The top-k unit keeps two buffer sets (Section III-B(4)): the
            // shadow set can fill from memory while the previous round's
            // scan still uses the active set, so the fill is issued as
            // soon as the previous scan *begins*.
            let (_, fe) = mem.transfer(prev_scan_start, fill_bytes_total);
            fill_end = fe;
            fill_bytes += fill_bytes_total;
        }

        // LUT fills for this round (double buffer: waits for scan ri−2).
        let lut_buf_free = if ri >= 2 {
            scan_end[ri - 2]
        } else {
            filter_done
        };
        let lut_dur = r.queries.len() as f64 * lut_one;
        let lut_start = cpm_free.max(lut_buf_free);
        let lut_end = lut_start + lut_dur;
        cpm_free = lut_end;
        cpm_busy += lut_dur;

        // Scan.
        let prev = if ri > 0 {
            scan_end[ri - 1]
        } else {
            filter_done
        };
        let start = prev.max(lut_end).max(data_ready[ri]).max(fill_end);
        let dur = ((r.cluster_size as f64) / g as f64).ceil() * cpv;
        scan_end[ri] = (start + dur).max(fetch_end_of[ri]);
        scm_busy += dur;
        prev_scan_start = start;
        traces.push(RoundTrace {
            round: ri,
            cluster: r.cluster,
            queries: r.queries.len(),
            fetch: fetch_window,
            lut: (lut_start, lut_end),
            scan: (start, scan_end[ri]),
        });
        topk_inputs += r.cluster_size as f64 * r.queries.len() as f64;

        // Record buffer release (last round of this fetch).
        if last_round_of_fetch[fi] == ri {
            fetch_release[fi] = scan_end[ri];
        }

        // Spills for queries that will resume later (issued next
        // iteration, behind the following prefetch).
        let spill_total = topk_units[ri].1 * plan.spill_unit_bytes;
        if spill_total > 0 {
            pending_spill = Some((scan_end[ri], spill_total));
            spill_bytes += spill_total;
        }
    }
    if let Some((ready, bytes)) = pending_spill.take() {
        mem.transfer(ready, bytes);
    }

    let after = if n > 0 { scan_end[n - 1] } else { filter_done };
    let merge = if g > 1 {
        b as f64 * (g as f64 - 1.0) * s.k as f64 / plan.queries_per_round as f64
    } else {
        0.0
    };
    let traffic = TrafficModel::new(cfg.plan_params()).price(w, plan);
    let (_, end) = mem.transfer(after + merge, traffic.result_bytes);

    // The simulated transfers must have moved exactly the priced bytes.
    debug_assert_eq!(code_bytes, traffic.code_bytes);
    debug_assert_eq!(meta_bytes, traffic.cluster_meta_bytes);
    debug_assert_eq!(spill_bytes, traffic.topk_spill_bytes);
    debug_assert_eq!(fill_bytes, traffic.topk_fill_bytes);

    let compute_cycles = cpm_busy + scm_busy + merge;
    let memory_cycles = traffic.total() as f64 / mem.bpc;

    let report = TimingReport {
        cycles: end,
        filter_cycles: filter_done,
        compute_cycles,
        memory_cycles,
        traffic,
        activity: Activity {
            cpm_cycles: cpm_busy,
            scm_cycles: rounds
                .iter()
                .map(|r| {
                    ((r.cluster_size as f64) / g as f64).ceil() * cpv * (r.queries.len() * g) as f64
                })
                .sum(),
            topk_inputs,
        },
        clusters_fetched: plan.clusters_fetched(),
        scan_work: plan.total_scan_work(),
        queries: b,
    };
    (report, traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analytic;
    use crate::timing::SearchShape;

    fn shape(metric: Metric, num_clusters: usize) -> SearchShape {
        SearchShape {
            d: 128,
            m: 64,
            kstar: 256,
            metric,
            num_clusters,
            k: 1000,
        }
    }

    #[test]
    fn single_query_agrees_with_analytic() {
        let cfg = AnnaConfig::paper();
        for metric in [Metric::L2, Metric::InnerProduct] {
            for &(w, size) in &[(8usize, 10_000usize), (32, 100_000), (128, 1_000)] {
                let q = QueryWorkload {
                    shape: shape(metric, 10_000),
                    visited_cluster_sizes: vec![size; w],
                };
                let a = analytic::single_query(&cfg, &q, 16);
                let c = single_query(&cfg, &q, 16);
                let ratio = c.cycles / a.cycles;
                assert!(
                    (0.8..1.25).contains(&ratio),
                    "{metric} W={w} size={size}: cycle {} vs analytic {} (ratio {ratio})",
                    c.cycles,
                    a.cycles
                );
                assert_eq!(c.traffic.code_bytes, a.traffic.code_bytes);
            }
        }
    }

    #[test]
    fn batch_agrees_with_analytic() {
        let cfg = AnnaConfig::paper();
        let s = shape(Metric::L2, 100);
        let w = BatchWorkload {
            shape: s,
            cluster_sizes: vec![20_000; 100],
            visits: (0..128)
                .map(|q| (0..8).map(|i| (q * 3 + i) % 100).collect())
                .collect(),
        };
        let a = analytic::batch(&cfg, &w, ScmAllocation::InterQuery);
        let c = batch(&cfg, &w, ScmAllocation::InterQuery);
        let ratio = c.cycles / a.cycles;
        assert!(
            (0.75..1.35).contains(&ratio),
            "cycle {} vs analytic {} (ratio {ratio})",
            c.cycles,
            a.cycles
        );
        assert_eq!(c.traffic.code_bytes, a.traffic.code_bytes);
        assert_eq!(c.traffic.topk_spill_bytes, a.traffic.topk_spill_bytes);
        assert_eq!(c.traffic.topk_fill_bytes, a.traffic.topk_fill_bytes);
    }

    #[test]
    fn never_beats_memory_bound() {
        let cfg = AnnaConfig::paper();
        let q = QueryWorkload {
            shape: shape(Metric::L2, 10_000),
            visited_cluster_sizes: vec![100_000; 32],
        };
        let r = single_query(&cfg, &q, 16);
        assert!(r.cycles + 1e-6 >= r.memory_cycles);
    }

    #[test]
    fn more_bandwidth_is_never_slower() {
        let slow = AnnaConfig {
            mem_bandwidth_gbps: 32.0,
            ..AnnaConfig::paper()
        };
        let fast = AnnaConfig {
            mem_bandwidth_gbps: 128.0,
            ..AnnaConfig::paper()
        };
        let q = QueryWorkload {
            shape: shape(Metric::L2, 10_000),
            visited_cluster_sizes: vec![100_000; 32],
        };
        let rs = single_query(&slow, &q, 16);
        let rf = single_query(&fast, &q, 16);
        assert!(rf.cycles <= rs.cycles);
    }

    #[test]
    fn double_buffering_overlaps_fetch_with_scan() {
        // With g = 1, scan time per cluster equals fetch time per cluster
        // (1 cycle/vector each way); double buffering should give close to
        // max(total_scan, total_fetch) rather than their sum.
        let cfg = AnnaConfig::paper();
        let q = QueryWorkload {
            shape: shape(Metric::InnerProduct, 10_000),
            visited_cluster_sizes: vec![50_000; 16],
        };
        let r = single_query(&cfg, &q, 1);
        let scan_total = 16.0 * 50_000.0; // 1 cycle per vector
        let fetch_total = 16.0 * 50_000.0 * 64.0 / cfg.bytes_per_cycle();
        let serial = scan_total + fetch_total + r.filter_cycles;
        assert!(
            r.cycles < 0.7 * serial,
            "no overlap visible: {} vs serial {serial}",
            r.cycles
        );
    }
}
