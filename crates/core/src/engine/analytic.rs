//! Closed-form timing engine, implementing the paper's cycle formulas
//! (Sections III-B and IV-B) with double-buffered overlap.
//!
//! Cross-validated against the event-driven [`crate::engine::cycle`]
//! engine; integration tests assert the two agree within a few percent.

use anna_plan::{BatchPlan, ScmAllocation, TrafficModel};
use anna_vector::Metric;

use crate::config::AnnaConfig;
use crate::timing::{Activity, BatchWorkload, QueryWorkload, TimingReport, TrafficReport};

// The byte constants live with the `TrafficModel` in the shared plan layer;
// re-exported here because they originated in this module.
pub use anna_plan::{CLUSTER_META_BYTES, QUERY_ID_BYTES};

/// Times one query in the baseline (non-batched) mode, with `g` SCMs
/// assigned to the query (intra-query parallelism; `g = 1` uses a single
/// SCM).
///
/// The pipeline follows Section III-A: cluster filtering first, then the
/// per-cluster loop in which the SCM scans cluster `i` while the CPM builds
/// the (L2) lookup table for cluster `i+1` and the EFM prefetches cluster
/// `i+1`'s codes — both double-buffered.
///
/// # Panics
///
/// Panics if the shape is invalid, `g` is zero or exceeds `N_SCM`.
pub fn single_query(cfg: &AnnaConfig, w: &QueryWorkload, g: usize) -> TimingReport {
    w.shape.assert_valid();
    assert!(
        g > 0 && g <= cfg.n_scm,
        "g={g} out of range (N_SCM={})",
        cfg.n_scm
    );
    let s = &w.shape;
    let bpc = cfg.bytes_per_cycle();
    let cpv = s.scan_cycles_per_vector(cfg.n_u) as f64;
    let bytes_per_vec = s.encoded_bytes_per_vector() as u64;
    let lut_fill = s.lut_fill_cycles(cfg.n_cu);
    // Residual computation (Mode 2) precedes every L2 LUT fill: D/N_cu.
    let residual = s.d as f64 / cfg.n_cu as f64;
    let per_cluster_lut = match s.metric {
        Metric::L2 => lut_fill + residual,
        Metric::InnerProduct => 0.0,
    };

    // --- Step 1: cluster filtering -------------------------------------
    let filter_compute = s.filter_compute_cycles(cfg.n_cu);
    let centroid_bytes = s.centroid_bytes();
    let filter_cycles = filter_compute.max(centroid_bytes as f64 / bpc);

    // --- Steps 2 & 3: per-cluster pipeline ------------------------------
    let sizes = &w.visited_cluster_sizes;
    let nvisits = sizes.len();
    let scan = |size: usize| ((size as f64) / g as f64).ceil() * cpv;
    let fetch_bytes = |size: usize| size as u64 * bytes_per_vec + CLUSTER_META_BYTES;

    // One-off inner-product LUT build (cluster-invariant).
    let ip_lut = match s.metric {
        Metric::InnerProduct => lut_fill,
        Metric::L2 => 0.0,
    };

    let mut scan_phase = 0.0f64;
    if nvisits > 0 {
        // Prologue: fill the first LUT while fetching the first cluster.
        let first_lut = match s.metric {
            Metric::L2 => per_cluster_lut,
            Metric::InnerProduct => 0.0,
        };
        scan_phase += first_lut.max(fetch_bytes(sizes[0]) as f64 / bpc);
        for i in 0..nvisits {
            let next_lut = if i + 1 < nvisits {
                per_cluster_lut
            } else {
                0.0
            };
            let next_fetch = if i + 1 < nvisits {
                fetch_bytes(sizes[i + 1]) as f64 / bpc
            } else {
                0.0
            };
            scan_phase += scan(sizes[i]).max(next_lut).max(next_fetch);
        }
    }

    // Epilogue: merge g partial top-k units and store the result.
    let merge = if g > 1 {
        (g as f64 - 1.0) * s.k as f64
    } else {
        0.0
    };
    let result_bytes = (s.k * cfg.topk_record_bytes) as u64;

    let code_bytes: u64 = sizes.iter().map(|&z| z as u64 * bytes_per_vec).sum();
    let traffic = TrafficReport {
        centroid_bytes,
        cluster_meta_bytes: CLUSTER_META_BYTES * nvisits as u64,
        code_bytes,
        topk_spill_bytes: 0,
        topk_fill_bytes: 0,
        query_list_bytes: 0,
        rerank_candidate_bytes: 0,
        rerank_vector_bytes: 0,
        result_bytes,
    };

    let scan_demand: f64 = sizes.iter().map(|&z| scan(z)).sum();
    let lut_demand = ip_lut + per_cluster_lut * nvisits as f64;
    let compute_cycles = filter_compute + lut_demand + scan_demand + merge;
    let memory_cycles = traffic.total() as f64 / bpc;

    let cycles = filter_cycles + ip_lut + scan_phase + merge + result_bytes as f64 / bpc;

    TimingReport {
        cycles,
        filter_cycles,
        compute_cycles,
        memory_cycles,
        traffic,
        activity: Activity {
            cpm_cycles: filter_compute + lut_demand,
            scm_cycles: scan_demand * g as f64,
            topk_inputs: w.vectors_scanned() as f64,
        },
        clusters_fetched: nvisits as u64,
        scan_work: w.vectors_scanned(),
        queries: 1,
    }
}

/// Times one query with double buffering **disabled** — every stage
/// serializes: fetch cluster `i`, then build its LUT, then scan it, with
/// no overlap. The ablation counterpart of [`single_query`], quantifying
/// what Section III-A's "overlaps lookup table construction on the CPM
/// and similarity computation on the SCM through double buffering" buys.
///
/// # Panics
///
/// Panics if the shape is invalid or `g` is out of range.
pub fn single_query_unbuffered(cfg: &AnnaConfig, w: &QueryWorkload, g: usize) -> TimingReport {
    w.shape.assert_valid();
    assert!(
        g > 0 && g <= cfg.n_scm,
        "g={g} out of range (N_SCM={})",
        cfg.n_scm
    );
    let s = &w.shape;
    let bpc = cfg.bytes_per_cycle();
    let cpv = s.scan_cycles_per_vector(cfg.n_u) as f64;
    let bytes_per_vec = s.encoded_bytes_per_vector() as u64;
    let lut_fill = s.lut_fill_cycles(cfg.n_cu);
    let residual = s.d as f64 / cfg.n_cu as f64;

    let filter_compute = s.filter_compute_cycles(cfg.n_cu);
    // Without overlap even the filter serializes: stream, then compute.
    let filter_cycles = s.centroid_bytes() as f64 / bpc + filter_compute;

    let ip_lut = match s.metric {
        Metric::InnerProduct => lut_fill,
        Metric::L2 => 0.0,
    };
    let per_cluster_lut = match s.metric {
        Metric::L2 => lut_fill + residual,
        Metric::InnerProduct => 0.0,
    };

    let mut scan_phase = ip_lut;
    let mut scan_demand = 0.0;
    for &size in &w.visited_cluster_sizes {
        let fetch = (size as u64 * bytes_per_vec + CLUSTER_META_BYTES) as f64 / bpc;
        let scan = ((size as f64) / g as f64).ceil() * cpv;
        scan_phase += fetch + per_cluster_lut + scan;
        scan_demand += scan;
    }
    let merge = if g > 1 {
        (g as f64 - 1.0) * s.k as f64
    } else {
        0.0
    };
    let result_bytes = (s.k * cfg.topk_record_bytes) as u64;

    let nvisits = w.visited_cluster_sizes.len();
    let code_bytes: u64 = w
        .visited_cluster_sizes
        .iter()
        .map(|&z| z as u64 * bytes_per_vec)
        .sum();
    let traffic = TrafficReport {
        centroid_bytes: s.centroid_bytes(),
        cluster_meta_bytes: CLUSTER_META_BYTES * nvisits as u64,
        code_bytes,
        topk_spill_bytes: 0,
        topk_fill_bytes: 0,
        query_list_bytes: 0,
        rerank_candidate_bytes: 0,
        rerank_vector_bytes: 0,
        result_bytes,
    };
    let lut_demand = ip_lut + per_cluster_lut * nvisits as f64;
    TimingReport {
        cycles: filter_cycles + scan_phase + merge + result_bytes as f64 / bpc,
        filter_cycles,
        compute_cycles: filter_compute + lut_demand + scan_demand + merge,
        memory_cycles: traffic.total() as f64 / bpc,
        traffic,
        activity: Activity {
            cpm_cycles: filter_compute + lut_demand,
            scm_cycles: scan_demand * g as f64,
            topk_inputs: w.vectors_scanned() as f64,
        },
        clusters_fetched: nvisits as u64,
        scan_work: w.vectors_scanned(),
        queries: 1,
    }
}

/// Times `B` queries processed one at a time (ANNA **without** the memory
/// traffic optimization — the baseline side of the Section V-B comparison).
pub fn sequential_queries(cfg: &AnnaConfig, workloads: &[QueryWorkload], g: usize) -> TimingReport {
    let mut total = TimingReport {
        cycles: 0.0,
        filter_cycles: 0.0,
        compute_cycles: 0.0,
        memory_cycles: 0.0,
        traffic: TrafficReport::default(),
        activity: Activity::default(),
        clusters_fetched: 0,
        scan_work: 0,
        queries: 0,
    };
    for w in workloads {
        let r = single_query(cfg, w, g);
        total.cycles += r.cycles;
        total.filter_cycles += r.filter_cycles;
        total.compute_cycles += r.compute_cycles;
        total.memory_cycles += r.memory_cycles;
        total.traffic.centroid_bytes += r.traffic.centroid_bytes;
        total.traffic.cluster_meta_bytes += r.traffic.cluster_meta_bytes;
        total.traffic.code_bytes += r.traffic.code_bytes;
        total.traffic.topk_spill_bytes += r.traffic.topk_spill_bytes;
        total.traffic.topk_fill_bytes += r.traffic.topk_fill_bytes;
        total.traffic.query_list_bytes += r.traffic.query_list_bytes;
        total.traffic.result_bytes += r.traffic.result_bytes;
        total.activity.cpm_cycles += r.activity.cpm_cycles;
        total.activity.scm_cycles += r.activity.scm_cycles;
        total.activity.topk_inputs += r.activity.topk_inputs;
        total.clusters_fetched += r.clusters_fetched;
        total.scan_work += r.scan_work;
        total.queries += 1;
    }
    total
}

/// Times a batch under the memory-traffic-optimized, cluster-major
/// schedule (Section IV-B and Figure 7).
///
/// In the steady state, while the SCMs score round `r`, the CPM fills
/// round `r+1`'s lookup tables (`queries·D·k*/N_cu` cycles) and the memory
/// system moves round `r+1`'s data (top-k spill/fill at 5 B per record plus
/// the next cluster's codes when it changes). Each stage therefore costs
/// `max(scan_r, lut_{r+1}, mem_{r+1}/bpc)` cycles.
///
/// # Panics
///
/// Panics if the shape is invalid or the allocation is inconsistent with
/// `N_SCM`.
pub fn batch(cfg: &AnnaConfig, w: &BatchWorkload, alloc: ScmAllocation) -> TimingReport {
    let plan = anna_plan::plan(&cfg.plan_params(), w, alloc);
    batch_plan(cfg, w, &plan)
}

/// Times a batch executing an explicit, pre-computed [`BatchPlan`] — the
/// shared IR also consumed by the software batch engine, the cycle and
/// stepped simulators, and the functional accelerator. The traffic side of
/// the report is priced by [`TrafficModel`] on the same plan, so predicted
/// and simulated bytes are equal by construction.
///
/// # Panics
///
/// Panics if the shape is invalid or the plan references queries outside
/// the workload.
pub fn batch_plan(cfg: &AnnaConfig, w: &BatchWorkload, plan: &BatchPlan) -> TimingReport {
    w.shape.assert_valid();
    let s = &w.shape;
    let g = plan.scm_per_query;
    let b = w.b();
    let bpc = cfg.bytes_per_cycle();
    let cpv = s.scan_cycles_per_vector(cfg.n_u) as f64;
    let bytes_per_vec = s.encoded_bytes_per_vector() as u64;
    let lut_fill_one = s.lut_fill_cycles(cfg.n_cu)
        + match s.metric {
            Metric::L2 => s.d as f64 / cfg.n_cu as f64, // residual step
            Metric::InnerProduct => 0.0,
        };

    // --- Phase 1: cluster filtering for the whole batch -----------------
    // Centroids stream once and are scored against every query on-chip;
    // selected cluster ids are appended to the per-cluster query lists in
    // main memory (3 B per record, written then read back by the
    // scheduler).
    let filter_compute = s.filter_compute_cycles(cfg.n_cu) * b as f64;
    let total_visits = w.total_visits();
    let filter_mem = s.centroid_bytes() + total_visits * QUERY_ID_BYTES;
    let filter_cycles = filter_compute.max(filter_mem as f64 / bpc);

    // --- Phase 2: cluster-major rounds ----------------------------------
    // Per-round quantities. Spill/fill traffic: a query's partial top-k is
    // filled from memory unless this is its first round, and spilled back
    // unless it is its last; the plan prices each direction at
    // `spill_unit_bytes` (the query's `g` SCM-partitions each hold their
    // own k-entry unit).
    let rounds = &plan.rounds;
    let n_rounds = rounds.len();
    let topk_units = plan.round_topk_units();

    let mut scan_cycles_r = Vec::with_capacity(n_rounds);
    let mut lut_cycles_r = Vec::with_capacity(n_rounds);
    let mut mem_bytes_r = Vec::with_capacity(n_rounds);
    let mut topk_inputs = 0f64;

    for (r, &(fills, spills)) in rounds.iter().zip(&topk_units) {
        let nq = r.queries.len() as f64;
        scan_cycles_r.push(((r.cluster_size as f64) / g as f64).ceil() * cpv);
        lut_cycles_r.push(nq * lut_fill_one);
        let mut bytes = (fills + spills) * plan.spill_unit_bytes;
        if r.fetches_codes {
            bytes += r.cluster_size as u64 * bytes_per_vec + CLUSTER_META_BYTES;
        }
        mem_bytes_r.push(bytes);
        topk_inputs += r.cluster_size as f64 * nq;
    }

    // Steady-state pipeline: stage r overlaps scan(r) with lut(r+1) and
    // mem(r+1).
    let mut scan_phase = 0.0f64;
    if n_rounds > 0 {
        scan_phase += lut_cycles_r[0].max(mem_bytes_r[0] as f64 / bpc); // prologue
        for r in 0..n_rounds {
            let next_lut = if r + 1 < n_rounds {
                lut_cycles_r[r + 1]
            } else {
                0.0
            };
            let next_mem = if r + 1 < n_rounds {
                mem_bytes_r[r + 1] as f64 / bpc
            } else {
                0.0
            };
            scan_phase += scan_cycles_r[r].max(next_lut).max(next_mem);
        }
    }

    // Epilogue: per-query merge of g partial units (groups work in
    // parallel) and the final result store.
    let merge = if g > 1 {
        b as f64 * (g as f64 - 1.0) * s.k as f64 / plan.queries_per_round as f64
    } else {
        0.0
    };

    let traffic = TrafficModel::new(cfg.plan_params()).price(w, plan);
    let result_bytes = traffic.result_bytes;

    let scan_demand: f64 = scan_cycles_r.iter().sum();
    let lut_demand: f64 = lut_cycles_r.iter().sum();
    let compute_cycles = filter_compute + lut_demand + scan_demand + merge;
    let memory_cycles = traffic.total() as f64 / bpc;
    let cycles = filter_cycles + scan_phase + merge + result_bytes as f64 / bpc;

    // Check every query was scheduled for all of its visits.
    debug_assert_eq!(
        rounds.iter().map(|r| r.queries.len() as u64).sum::<u64>(),
        total_visits
    );

    TimingReport {
        cycles,
        filter_cycles,
        compute_cycles,
        memory_cycles,
        traffic,
        activity: Activity {
            cpm_cycles: filter_compute + lut_demand,
            scm_cycles: rounds
                .iter()
                .zip(&scan_cycles_r)
                .map(|(r, &sc)| sc * (r.queries.len() * g) as f64)
                .sum(),
            topk_inputs,
        },
        clusters_fetched: plan.clusters_fetched(),
        scan_work: plan.total_scan_work(),
        queries: b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::SearchShape;

    fn shape(metric: Metric) -> SearchShape {
        SearchShape {
            d: 128,
            m: 64,
            kstar: 256,
            metric,
            num_clusters: 10_000,
            k: 1000,
        }
    }

    fn query(metric: Metric, w: usize, size: usize) -> QueryWorkload {
        QueryWorkload {
            shape: shape(metric),
            visited_cluster_sizes: vec![size; w],
        }
    }

    #[test]
    fn single_query_lower_bounds_hold() {
        let cfg = AnnaConfig::paper();
        let q = query(Metric::L2, 32, 100_000);
        let r = single_query(&cfg, &q, 16);
        // Total time can never beat either pure-compute or pure-memory.
        assert!(r.cycles + 1e-6 >= r.memory_cycles * 0.99);
        assert!(r.cycles * 16.0 + 1e-6 >= r.compute_cycles * 0.99);
        assert_eq!(r.queries, 1);
    }

    #[test]
    fn billion_scale_latency_is_sub_millisecond() {
        // The paper: "ANNA achieves high recall (0.9+) at sub-ms latency in
        // billion-scale datasets". At W=8 the query streams
        // 8 × 100k × 64 B ≈ 51 MB, i.e. ~0.8 ms at 64 GB/s — sub-ms; at
        // W=32 the stream alone exceeds 1 ms, so the paper's point sits at
        // moderate W.
        let cfg = AnnaConfig::paper();
        let q = query(Metric::L2, 8, 100_000);
        let r = single_query(&cfg, &q, 16);
        let latency = r.latency_seconds(&cfg);
        assert!(latency < 1e-3, "latency {latency}s not sub-ms");
        assert!(latency > 1e-5, "latency {latency}s implausibly fast");
    }

    #[test]
    fn ip_skips_per_cluster_lut_rebuild() {
        let cfg = AnnaConfig::paper();
        let l2 = single_query(&cfg, &query(Metric::L2, 64, 1000), 1);
        let ip = single_query(&cfg, &query(Metric::InnerProduct, 64, 1000), 1);
        assert!(
            ip.activity.cpm_cycles < l2.activity.cpm_cycles,
            "IP should do less CPM work ({} vs {})",
            ip.activity.cpm_cycles,
            l2.activity.cpm_cycles
        );
    }

    #[test]
    fn intra_query_parallelism_cuts_latency() {
        // Use a compute-bound configuration (narrow reduction tree) so the
        // scan dominates; then splitting the cluster across 16 SCMs must
        // pay off. In memory-bound regimes g barely matters — also checked.
        let narrow = AnnaConfig {
            n_u: 8,
            ..AnnaConfig::paper()
        };
        let q = query(Metric::L2, 32, 100_000);
        let g1 = single_query(&narrow, &q, 1);
        let g16 = single_query(&narrow, &q, 16);
        assert!(
            g16.cycles < g1.cycles / 2.0,
            "16 SCMs ({}) should be far faster than 1 ({})",
            g16.cycles,
            g1.cycles
        );

        // Memory-bound regime: the paper config at large W is bandwidth
        // limited, so g helps little.
        let cfg = AnnaConfig::paper();
        let m1 = single_query(&cfg, &q, 1);
        let m16 = single_query(&cfg, &q, 16);
        assert!(m16.cycles <= m1.cycles);
        assert!(
            m16.cycles > m1.cycles * 0.5,
            "memory-bound run should not scale with SCMs ({} vs {})",
            m16.cycles,
            m1.cycles
        );
    }

    #[test]
    fn double_buffering_beats_serialized_stages() {
        let cfg = AnnaConfig::paper();
        // Balanced work: scan time per cluster ≈ fetch time per cluster,
        // the regime where overlap pays the most (approaching 2x).
        let q = query(Metric::L2, 16, 50_000);
        let buffered = single_query(&cfg, &q, 1);
        let serial = single_query_unbuffered(&cfg, &q, 1);
        let speedup = serial.cycles / buffered.cycles;
        assert!(
            speedup > 1.5,
            "double buffering should approach 2x here, got {speedup:.2}x"
        );
        // Identical traffic: the optimization moves no extra bytes.
        assert_eq!(buffered.traffic.total(), serial.traffic.total());
        // And never slower, even in memory-bound corner cases.
        let q2 = query(Metric::InnerProduct, 4, 100_000);
        assert!(
            single_query(&cfg, &q2, 16).cycles
                <= single_query_unbuffered(&cfg, &q2, 16).cycles + 1e-6
        );
    }

    #[test]
    fn batch_traffic_matches_figure5_worst_case() {
        // B=100 queries, |C|=50 clusters, W=10: conventional loads B·W=1000
        // clusters; optimized loads at most |C|=50.
        let cfg = AnnaConfig::paper();
        let s = SearchShape {
            num_clusters: 50,
            ..shape(Metric::L2)
        };
        let w = BatchWorkload {
            shape: s,
            cluster_sizes: vec![1000; 50],
            visits: (0..100)
                .map(|q| (0..10).map(|i| (q + i) % 50).collect())
                .collect(),
        };
        let opt = batch(&cfg, &w, ScmAllocation::InterQuery);
        let per_cluster = 1000 * s.encoded_bytes_per_vector() as u64;
        assert!(opt.traffic.code_bytes <= 50 * per_cluster);
        let seq: Vec<QueryWorkload> = w
            .visits
            .iter()
            .map(|v| QueryWorkload {
                shape: s,
                visited_cluster_sizes: v.iter().map(|&c| w.cluster_sizes[c]).collect(),
            })
            .collect();
        let base = sequential_queries(&cfg, &seq, 1);
        assert_eq!(base.traffic.code_bytes, 1000 * per_cluster);
        assert!(
            (base.traffic.code_bytes as f64 / opt.traffic.code_bytes as f64 - 20.0).abs() < 1e-9,
            "expected exactly 20x code-traffic reduction"
        );
    }

    #[test]
    fn optimized_batch_is_faster_when_memory_bound() {
        let cfg = AnnaConfig::paper();
        let s = SearchShape {
            num_clusters: 100,
            ..shape(Metric::L2)
        };
        let w = BatchWorkload {
            shape: s,
            cluster_sizes: vec![50_000; 100],
            visits: (0..256)
                .map(|q| (0..16).map(|i| (q * 7 + i) % 100).collect())
                .collect(),
        };
        let opt = batch(&cfg, &w, ScmAllocation::Auto);
        let seq: Vec<QueryWorkload> = w
            .visits
            .iter()
            .map(|v| QueryWorkload {
                shape: s,
                visited_cluster_sizes: v.iter().map(|&c| w.cluster_sizes[c]).collect(),
            })
            .collect();
        let base = sequential_queries(&cfg, &seq, 16);
        assert!(
            opt.cycles < base.cycles,
            "optimized {} should beat baseline {}",
            opt.cycles,
            base.cycles
        );
    }

    #[test]
    fn spill_traffic_bounded_by_paper_formula() {
        // Section IV-B: per round at most 2·k·N_SCM·5 B.
        let cfg = AnnaConfig::paper();
        let s = SearchShape {
            num_clusters: 20,
            ..shape(Metric::L2)
        };
        let w = BatchWorkload {
            shape: s,
            cluster_sizes: vec![1000; 20],
            visits: (0..64)
                .map(|q| (0..5).map(|i| (q + i) % 20).collect())
                .collect(),
        };
        let schedule = anna_plan::plan(&cfg.plan_params(), &w, ScmAllocation::InterQuery);
        let r = batch(&cfg, &w, ScmAllocation::InterQuery);
        // The bound covers both directions (one spill + one fill per query
        // per round at most), now accounted separately.
        let per_round_max = 2 * 1000 * 16 * 5;
        assert!(
            r.traffic.topk_spill_bytes + r.traffic.topk_fill_bytes
                <= (schedule.rounds.len() * per_round_max) as u64
        );
        // A query fills exactly as many times as it spills (every spilled
        // unit is read back in a later round), so the directions balance.
        assert_eq!(r.traffic.topk_spill_bytes, r.traffic.topk_fill_bytes);
        assert!(r.traffic.topk_spill_bytes > 0, "workload should spill");
    }

    #[test]
    fn empty_batch_times_zero_scan() {
        let cfg = AnnaConfig::paper();
        let w = BatchWorkload {
            shape: shape(Metric::L2),
            cluster_sizes: vec![10; 10_000],
            visits: vec![],
        };
        let r = batch(&cfg, &w, ScmAllocation::InterQuery);
        assert_eq!(r.traffic.code_bytes, 0);
        assert_eq!(r.queries, 0);
    }
}
