//! # anna — a reproduction of "ANNA: Specialized Architecture for
//! Approximate Nearest Neighbor Search" (HPCA 2022)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`vector`] — dense vector substrate (matrices, metrics, f16, top-k,
//!   exact search).
//! * [`quant`] — training substrate (k-means, product quantization,
//!   ScaNN-style anisotropic PQ, sub-byte code packing).
//! * [`index`] — the two-level IVF-PQ index and software search (the CPU
//!   baseline).
//! * [`data`] — synthetic dataset generators, cluster-size models, ground
//!   truth and recall.
//! * [`plan`] — the shared plan layer: the engine-tagged plan IR
//!   ([`plan::EnginePlan`] over [`plan::BatchPlan`] and
//!   [`plan::GraphPlan`]) and the [`plan::TrafficModel`] that prices a
//!   plan in bytes before execution.
//! * [`engine`] — the engine-agnostic query-execution layer: the
//!   [`engine::SearchEngine`] trait (`workload → plan → price → execute
//!   → verify`) every index family implements.
//! * [`graph`] — the beam-search proximity-graph engine
//!   ([`graph::PqGraph`]), the second index family behind
//!   [`engine::SearchEngine`].
//! * [`core`] — the ANNA accelerator model: hardware modules, timing
//!   engines, area/energy model (all consuming [`plan`]).
//! * [`baseline`] — CPU/GPU analytical baselines and the exhaustive-search
//!   baseline.
//!
//! ## Quick start
//!
//! ```
//! use anna::core::{Anna, AnnaConfig};
//! use anna::index::{IvfPqConfig, IvfPqIndex};
//! use anna::vector::{Metric, VectorSet};
//!
//! let db = VectorSet::from_fn(16, 2000, |r, c| ((r * 13 + c * 7) % 31) as f32);
//! let index = IvfPqIndex::build(&db, &IvfPqConfig {
//!     metric: Metric::L2,
//!     num_clusters: 20,
//!     m: 8,
//!     kstar: 16,
//!     ..IvfPqConfig::default()
//! });
//! let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
//! let (hits, timing) = anna.search(db.row(5), 4, 10);
//! assert_eq!(hits.len(), 10);
//! assert!(timing.qps(anna.config()) > 0.0);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! experiment harness that regenerates every table and figure of the
//! paper.

#![deny(missing_docs)]

pub use anna_baseline as baseline;
pub use anna_core as core;
pub use anna_data as data;
pub use anna_engine as engine;
pub use anna_graph as graph;
pub use anna_index as index;
pub use anna_plan as plan;
pub use anna_quant as quant;
pub use anna_vector as vector;
