//! End-to-end tests of the Section VI extension claims: OPQ and AQ models
//! running through the same search pipeline ("ANNA can support all these
//! variations since their computation pattern for the search remains the
//! same").

use anna::core::{Anna, AnnaConfig};
use anna::data::{recall, synth, Character, DatasetSpec};
use anna::index::{IvfPqConfig, IvfPqIndex, SearchParams};
use anna::quant::additive::{AqCodebook, AqConfig};
use anna::quant::opq::{Opq, OpqConfig};
use anna::quant::pq::PqConfig;
use anna::vector::{metric, Metric, VectorSet};

fn rotate_set(opq: &Opq, set: &VectorSet) -> VectorSet {
    let mut out = VectorSet::zeros(set.dim(), 0);
    for v in set.iter() {
        out.push(&opq.rotate(v));
    }
    out
}

/// OPQ-as-preprocessing: learn a rotation, rotate database and queries,
/// and run the unchanged IVF-PQ + ANNA pipeline in the rotated space. The
/// hardware never knows a rotation happened — exactly the compatibility
/// the paper claims.
#[test]
fn opq_preprocessing_runs_through_the_unchanged_pipeline() {
    let ds = synth::generate(&DatasetSpec {
        name: "opq-e2e".into(),
        dim: 8,
        n: 6000,
        num_queries: 24,
        character: Character::DeepLike,
        num_blobs: 16,
        seed: 21,
    });
    let gt = recall::ground_truth(&ds.queries, &ds.db, ds.metric, 10);

    // Learn the rotation (the inner codebook is retrained below on
    // residuals by the index builder).
    let opq = Opq::train(
        &ds.db,
        &OpqConfig {
            pq: PqConfig {
                m: 4,
                kstar: 16,
                iters: 4,
                seed: 1,
            },
            outer_iters: 3,
        },
    );
    assert!(opq.orthogonality_error() < 1e-4);

    let rotated_db = rotate_set(&opq, &ds.db);
    let rotated_queries = rotate_set(&opq, &ds.queries);

    let index = IvfPqIndex::build(
        &rotated_db,
        &IvfPqConfig {
            metric: ds.metric,
            num_clusters: 16,
            m: 4,
            kstar: 16,
            ..IvfPqConfig::default()
        },
    );

    // Rotation preserves L2 geometry, so ground truth in the original
    // space remains valid for rotated searches.
    let params = SearchParams {
        nprobe: 8,
        k: 100,
        ..Default::default()
    };
    let results = index.search_batch(&rotated_queries, &params);
    let r = recall::recall_x_at_y(&gt, &results, 100);
    assert!(r > 0.5, "OPQ-preprocessed recall too low: {r}");

    // And the hardware path accepts the same index untouched.
    let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
    let (hits, timing) = anna.search(rotated_queries.row(0), 8, 10);
    assert_eq!(hits.len(), 10);
    assert!(timing.cycles > 0.0);
}

/// AQ end-to-end for MIPS: encode a corpus with additive quantization and
/// verify LUT-based ranking agrees with exact ranking on the decoded
/// approximations (the M-lookups-plus-reduce pattern ANNA executes).
#[test]
fn aq_lut_ranking_matches_decoded_ranking() {
    let ds = synth::generate(&DatasetSpec {
        name: "aq-e2e".into(),
        dim: 8,
        n: 2000,
        num_queries: 6,
        character: Character::GloveLike,
        num_blobs: 12,
        seed: 33,
    });
    let book = AqCodebook::train(
        &ds.db,
        &AqConfig {
            m: 4,
            kstar: 16,
            iters: 6,
            beam: 2,
            seed: 0,
        },
    );
    let codes: Vec<_> = ds.db.iter().map(|v| book.encode(v)).collect();

    for qi in 0..ds.queries.len() {
        let q = ds.queries.row(qi);
        let lut = book.build_lut(q);
        // Rank via the hardware pattern (M lookups + reduce).
        let mut by_lut: Vec<(usize, f32)> = codes
            .iter()
            .enumerate()
            .map(|(i, c)| (i, AqCodebook::score_ip(&lut, c)))
            .collect();
        by_lut.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        // Rank via decoded dot products.
        let mut by_decode: Vec<(usize, f32)> = codes
            .iter()
            .enumerate()
            .map(|(i, c)| (i, metric::dot(q, &book.decode(&c.codes))))
            .collect();
        by_decode.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        // The top-10 sets must substantially agree (f16 LUT rounding may
        // swap near-ties).
        let top_lut: std::collections::HashSet<usize> =
            by_lut.iter().take(10).map(|&(i, _)| i).collect();
        let hits = by_decode
            .iter()
            .take(10)
            .filter(|(i, _)| top_lut.contains(i))
            .count();
        assert!(hits >= 8, "query {qi}: only {hits}/10 agreement");
    }
}

/// AQ recall against exact ground truth: the additive model must be a
/// usable ANNS quantizer, not just self-consistent.
#[test]
fn aq_mips_recall_is_usable() {
    let ds = synth::generate(&DatasetSpec {
        name: "aq-recall".into(),
        dim: 8,
        n: 3000,
        num_queries: 16,
        character: Character::GloveLike,
        num_blobs: 12,
        seed: 44,
    });
    assert_eq!(ds.metric, Metric::InnerProduct);
    let gt = recall::ground_truth(&ds.queries, &ds.db, ds.metric, 10);
    let book = AqCodebook::train(
        &ds.db,
        &AqConfig {
            m: 4,
            kstar: 16,
            iters: 8,
            beam: 2,
            seed: 0,
        },
    );
    let codes: Vec<_> = ds.db.iter().map(|v| book.encode(v)).collect();

    let mut total = 0.0;
    for qi in 0..ds.queries.len() {
        let lut = book.build_lut(ds.queries.row(qi));
        let mut scored: Vec<(u64, f32)> = codes
            .iter()
            .enumerate()
            .map(|(i, c)| (i as u64, AqCodebook::score_ip(&lut, c)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let retrieved: Vec<anna::vector::Neighbor> = scored
            .iter()
            .take(100)
            .map(|&(id, s)| anna::vector::Neighbor::new(id, s))
            .collect();
        total += recall::recall_one(&gt.ids[qi], &retrieved, 100);
    }
    let r = total / ds.queries.len() as f64;
    assert!(r > 0.6, "AQ MIPS recall 10@100 too low: {r}");
}
