//! Executable versions of the paper's worked illustrations: Figure 1
//! (product-quantization encoding), Figure 2 (two-level lookup-table
//! scoring, where the example sums to 5), and Figure 5's traffic-reduction
//! arithmetic (12.8× at B=1000, |C|=10000, |W|=128).

use anna::core::engine::analytic;
use anna::core::{AnnaConfig, BatchWorkload, QueryWorkload, ScmAllocation, SearchShape};
use anna::data::ClusterSizeModel;
use anna::index::{Lut, LutPrecision};
use anna::quant::pq::PqCodebook;
use anna::vector::{Metric, VectorSet};

/// Figure 1: a 6-dimensional vector split into M=3 sub-vectors, each
/// encoded against a k*=4 codebook; 12 bytes of float16 storage become
/// less than 1 byte of identifiers.
#[test]
fn figure1_pq_encoding_example() {
    // Three codebooks of four 2-dimensional codewords.
    let b0 = VectorSet::from_rows(2, &[0.0, 0.0, 1.0, 2.0, 3.0, 1.0, 5.0, 5.0]);
    let b1 = VectorSet::from_rows(2, &[2.0, 2.0, 0.0, 1.0, 4.0, 0.0, 1.0, 1.0]);
    let b2 = VectorSet::from_rows(2, &[1.0, 0.0, 0.0, 3.0, 2.0, 2.0, 3.0, 3.0]);
    let book = PqCodebook::from_books(vec![b0, b1, b2]);
    assert_eq!(book.dim(), 6);
    assert_eq!(book.m(), 3);
    assert_eq!(book.kstar(), 4);

    // x = concatenation of 3 sub-vectors; each picks its nearest codeword.
    let x = [1.1, 1.9, 0.2, 0.8, 2.1, 1.8];
    let codes = book.encode(&x);
    assert_eq!(
        codes,
        vec![1, 1, 2],
        "each sub-vector maps to its nearest codeword"
    );

    // Storage: 2 bytes/element x 6 = 12 bytes raw; 3 identifiers x log2(4)
    // bits = 6 bits — "less than 1 byte" as the figure says.
    let raw_bytes = 2 * 6;
    let encoded_bits = 3 * 2;
    assert_eq!(raw_bytes, 12);
    assert!(encoded_bits <= 8);

    // Decoding returns the concatenation of the selected codewords.
    assert_eq!(book.decode(&codes), vec![1.0, 2.0, 0.0, 1.0, 2.0, 2.0]);
}

/// Figure 2: with the lookup tables built, scoring encoded vector
/// e(r(x)) = (1, 0, 2) is L0[1] + L1[0] + L2[2] — and with the values
/// chosen here, exactly 5, as in the figure.
#[test]
fn figure2_lut_scoring_example() {
    // Codebooks picked so the selected entries contribute 2 + 1 + 2.
    let b0 = VectorSet::from_rows(2, &[9.0, 9.0, 1.0, 1.0, 7.0, 7.0, 8.0, 8.0]);
    let b1 = VectorSet::from_rows(2, &[1.0, 0.0, 9.0, 9.0, 7.0, 7.0, 8.0, 8.0]);
    let b2 = VectorSet::from_rows(2, &[9.0, 9.0, 7.0, 7.0, 1.0, 0.0, 8.0, 8.0]);
    let book = PqCodebook::from_books(vec![b0, b1, b2]);

    // Query sub-vectors: q0 = (1,1), q1 = (1,0), q2 = (2,0).
    let q = [1.0, 1.0, 1.0, 0.0, 2.0, 0.0];
    let lut = Lut::build_ip(&q, &book, LutPrecision::F32);

    assert_eq!(lut.get(0, 1), 2.0); // q0 . B0[1] = 1+1
    assert_eq!(lut.get(1, 0), 1.0); // q1 . B1[0] = 1
    assert_eq!(lut.get(2, 2), 2.0); // q2 . B2[2] = 2

    // "it computes similarity by summing up L0[e0] + L1[e1] + L2[e2]
    // which is 5".
    assert_eq!(lut.score(&[1, 0, 2]), 5.0);

    // Scoring costs M lookups and M-1 additions; cross-check against the
    // decoded form.
    let decoded = book.decode(&[1, 0, 2]);
    assert_eq!(Metric::InnerProduct.similarity(&q, &decoded), 5.0);
}

/// Figure 5 / Section IV: "When B=1000, |C|=10000, |W|=128, this technique
/// leads to a 12.8x traffic reduction" — the optimized schedule loads at
/// most |C| clusters where the conventional one loads B·|W|.
#[test]
fn figure5_traffic_reduction_arithmetic() {
    let shape = SearchShape {
        d: 128,
        m: 64,
        kstar: 256,
        metric: Metric::L2,
        num_clusters: 10_000,
        k: 1000,
    };
    let model = ClusterSizeModel::balanced(1_000_000_000, 10_000);
    let visits = model.sample_query_visits(1000, 128, 42);
    let workload = BatchWorkload {
        shape,
        cluster_sizes: model.sizes().to_vec(),
        visits: visits.clone(),
    };
    let cfg = AnnaConfig::paper();
    let opt = analytic::batch(&cfg, &workload, ScmAllocation::InterQuery);

    let singles: Vec<QueryWorkload> = visits
        .iter()
        .map(|v| QueryWorkload {
            shape,
            visited_cluster_sizes: v.iter().map(|&c| model.sizes()[c]).collect(),
        })
        .collect();
    let conventional = analytic::sequential_queries(&cfg, &singles, cfg.n_scm);

    let reduction = conventional.traffic.code_bytes as f64 / opt.traffic.code_bytes as f64;
    // With B·|W| = 128 000 visits over 10 000 clusters, virtually every
    // cluster is touched, so the reduction approaches exactly 12.8x.
    assert!(
        (reduction - 12.8).abs() < 0.8,
        "expected ~12.8x code-traffic reduction, got {reduction:.2}x"
    );
}

/// Section III-B's running SRAM numbers: 64 KB codebook SRAM and 32 KB
/// per-SCM lookup-table SRAM at D=128, k*=256, M=64.
#[test]
fn section3b_sram_sizing_examples() {
    let cfg = AnnaConfig::paper();
    assert_eq!(cfg.codebook_sram_bytes(128, 256), 64 * 1024);
    assert_eq!(cfg.lut_sram_bytes(64, 256), 32 * 1024);
}
