//! The plan layer's headline invariant (Section IV): for any
//! [`anna::plan::BatchPlan`], the [`anna::plan::TrafficModel`]-predicted
//! bytes, the software scanner's measured `BatchStats` bytes, and the
//! timing simulators' reported traffic are *exactly* equal — across
//! metrics, code widths, SCM allocations, and thread counts — while
//! results stay bit-identical to the serial software schedule.

use anna::core::engine::{analytic, cycle, stepped};
use anna::core::AnnaConfig;
use anna::index::{BatchedScan, IvfPqConfig, IvfPqIndex, SearchParams};
use anna::plan::{BatchWorkload, ScmAllocation, SearchShape, TrafficModel, CLUSTER_META_BYTES};
use anna::vector::{Metric, VectorSet};
use anna_telemetry::Telemetry;
use anna_testkit::{forall, TestRng};

/// Blobby data so the coarse quantizer produces unevenly sized clusters
/// (uneven rounds exercise the spill/fill accounting harder).
fn clustered(dim: usize, n: usize, salt: usize) -> VectorSet {
    VectorSet::from_fn(dim, n, |r, c| {
        let blob = ((r + salt) % 9) as f32;
        blob * 25.0 + ((r * 31 + c * 7 + salt * 13) % 11) as f32 * 0.3
    })
}

fn arb_alloc(rng: &mut TestRng) -> ScmAllocation {
    *rng.pick(&[
        ScmAllocation::InterQuery,
        ScmAllocation::IntraQuery { scm_per_query: 2 },
        ScmAllocation::IntraQuery { scm_per_query: 4 },
        ScmAllocation::Auto,
    ])
}

/// Predicted == measured == simulated, for real indexes over
/// {L2, InnerProduct} × {k* = 16, 256}, random plans, and 1/2/4/8 threads.
#[test]
fn predicted_measured_and_simulated_bytes_agree_exactly() {
    forall("plan cross validation", 6, |rng| {
        let salt = rng.usize(0..1000);
        let num_clusters = rng.usize(8..13);
        let nprobe = rng.usize(1..6).min(num_clusters);
        let k = rng.usize(5..50);
        let b = rng.usize(8..33);
        let alloc = arb_alloc(rng);
        for metric in [Metric::L2, Metric::InnerProduct] {
            for kstar in [16usize, 256] {
                let data = clustered(8, 600, salt);
                let index = IvfPqIndex::build(
                    &data,
                    &IvfPqConfig {
                        metric,
                        num_clusters,
                        m: 4,
                        kstar,
                        coarse_iters: 3,
                        pq_iters: 2,
                        ..IvfPqConfig::default()
                    },
                );
                let ids: Vec<usize> = (0..b).map(|i| (i * 37 + salt) % 600).collect();
                let queries = data.gather(&ids);
                let params = SearchParams {
                    nprobe,
                    k,
                    ..Default::default()
                };

                let cfg = AnnaConfig::paper();
                let scan = BatchedScan::new(&index);
                let w = scan.workload(&queries, &params);
                let pp = cfg.plan_params();
                let plan = anna::plan::plan(&pp, &w, alloc);
                let predicted = TrafficModel::new(pp).price(&w, &plan);

                // Simulators: full-report equality for the analytic and
                // cycle engines, total-byte equality for the stepped
                // engine (which sums its channel traffic independently).
                let a = analytic::batch_plan(&cfg, &w, &plan);
                assert_eq!(a.traffic, predicted, "analytic traffic diverged");
                let cy = cycle::batch_plan(&cfg, &w, &plan);
                assert_eq!(cy.traffic, predicted, "cycle traffic diverged");
                let st = stepped::batch_plan(&cfg, &w, &plan);
                assert_eq!(
                    st.traffic_bytes,
                    predicted.total(),
                    "stepped traffic diverged"
                );

                // Software: executing the *same* plan measures the same
                // bytes, component for component, at every thread count —
                // with results bit-identical to the single-thread run.
                let tel = Telemetry::disabled();
                let (reference, stats) = scan.run_plan(&queries, &params, &plan, 1, &tel);
                assert_eq!(stats.code_bytes, predicted.code_bytes);
                assert_eq!(
                    stats.clusters_fetched * CLUSTER_META_BYTES,
                    predicted.cluster_meta_bytes
                );
                assert_eq!(stats.topk_spill_bytes, predicted.topk_spill_bytes);
                assert_eq!(stats.topk_fill_bytes, predicted.topk_fill_bytes);
                for threads in [2usize, 4, 8] {
                    let (got, s) = scan.run_plan(&queries, &params, &plan, threads, &tel);
                    assert_eq!(got, reference, "{threads} threads diverged");
                    assert_eq!(s, stats, "{threads} threads stats diverged");
                }
            }
        }
    });
}

/// All three timing engines report the plan's own fetch and scan-work
/// counters when handed the same [`anna::plan::BatchPlan`] (the stepped
/// engine *measures* them in its state machine rather than copying them).
#[test]
fn engines_agree_on_clusters_fetched_and_scan_work() {
    forall("engines agree on plan counters", 32, |rng| {
        let (kstar, m) = *rng.pick(&[(16usize, 4usize), (16, 8), (256, 4), (256, 8)]);
        let metric = *rng.pick(&[Metric::L2, Metric::InnerProduct]);
        let c = rng.usize(4..24);
        let shape = SearchShape {
            d: m * 2,
            m,
            kstar,
            metric,
            num_clusters: c,
            k: rng.usize(10..500),
        };
        let b = rng.usize(2..24);
        let cluster_sizes: Vec<usize> = (0..c).map(|_| rng.usize(100..10_000)).collect();
        let visits: Vec<Vec<usize>> = (0..b)
            .map(|_| {
                let nv = rng.usize(1..5);
                let mut v: Vec<usize> = (0..nv).map(|_| rng.usize(0..c)).collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect();
        let w = BatchWorkload {
            shape,
            cluster_sizes,
            visits,
        };
        let cfg = AnnaConfig::paper();
        let plan = anna::plan::plan(&cfg.plan_params(), &w, arb_alloc(rng));

        let a = analytic::batch_plan(&cfg, &w, &plan);
        let cy = cycle::batch_plan(&cfg, &w, &plan);
        let st = stepped::batch_plan(&cfg, &w, &plan);
        let fetched = plan.clusters_fetched();
        let work = plan.total_scan_work();
        assert_eq!(a.clusters_fetched, fetched, "analytic fetch count");
        assert_eq!(cy.clusters_fetched, fetched, "cycle fetch count");
        assert_eq!(st.clusters_fetched, fetched, "stepped fetch count");
        assert_eq!(a.scan_work, work, "analytic scan work");
        assert_eq!(cy.scan_work, work, "cycle scan work");
        assert_eq!(st.scan_work, work, "stepped scan work");
    });
}

/// Grep-proof for the telemetry rename: the retired pre-`plan.*` counter
/// key must not survive anywhere in the workspace sources.
#[test]
fn retired_telemetry_key_is_gone_from_sources() {
    // Built via concat! so this test file does not match itself.
    let stale = concat!("clusters_", "loaded");
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut pending: Vec<std::path::PathBuf> = ["src", "crates", "tests", "benches", "examples"]
        .iter()
        .map(|d| root.join(d))
        .filter(|p| p.is_dir())
        .collect();
    pending.push(root.join("DESIGN.md"));
    pending.push(root.join("README.md"));
    let mut scanned = 0usize;
    let mut offenders = Vec::new();
    while let Some(path) = pending.pop() {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            for entry in std::fs::read_dir(&path).expect("readable source dir") {
                pending.push(entry.expect("dir entry").path());
            }
        } else if path
            .extension()
            .is_some_and(|e| e == "rs" || e == "md" || e == "toml")
        {
            let text = std::fs::read_to_string(&path).expect("readable source file");
            scanned += 1;
            if text.contains(stale) {
                offenders.push(path);
            }
        }
    }
    assert!(scanned > 50, "walk looks broken: only {scanned} files");
    assert!(offenders.is_empty(), "stale `{stale}` key in {offenders:?}");
}
