//! Trait-path equivalence: routing a batch through the shared
//! [`anna::engine::SearchEngine`] pipeline produces *bit-identical*
//! results and traffic to each engine's legacy entry point — across
//! metrics, code widths, and thread counts. This is the refactor's
//! non-negotiable: the engine layer is a seam, not a semantic change.

use anna::engine::{run_pipeline, PlanOptions, QuerySpec};
use anna::index::{
    BatchedScan, IvfPqConfig, IvfPqIndex, RerankMode, RerankPolicy, RerankPrecision, SearchParams,
    ShardedIndex,
};
use anna::plan::{PlanParams, TrafficModel};
use anna::vector::{Metric, VectorSet};
use anna_telemetry::Telemetry;
use anna_testkit::{forall, TestRng};

/// Grep-proof for the engine layer's telemetry namespace: every counter,
/// histogram, and span the engine-layer crates emit must use the
/// `engine.` prefix, so dashboards can select the whole layer with one
/// glob and no key silently lands in another layer's namespace.
#[test]
fn engine_layer_telemetry_keys_use_the_engine_prefix() {
    // Built via concat! so this test file does not match itself.
    let emitters = [
        concat!("counter_", "add(\""),
        concat!("record_", "ns(\""),
        concat!("sp", "an(\""),
    ];
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut scanned = 0usize;
    let mut keys = 0usize;
    let mut offenders = Vec::new();
    for dir in ["crates/engine/src", "crates/graph/src"] {
        let mut pending = vec![root.join(dir)];
        while let Some(path) = pending.pop() {
            if path.is_dir() {
                for entry in std::fs::read_dir(&path).expect("readable source dir") {
                    pending.push(entry.expect("dir entry").path());
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let text = std::fs::read_to_string(&path).expect("readable source file");
                scanned += 1;
                for emitter in emitters {
                    for (i, _) in text.match_indices(emitter) {
                        let key_start = i + emitter.len();
                        let key: String = text[key_start..]
                            .chars()
                            .take_while(|&c| c != '"')
                            .collect();
                        keys += 1;
                        if !key.starts_with("engine.") {
                            offenders.push(format!("{}: `{key}`", path.display()));
                        }
                    }
                }
            }
        }
    }
    assert!(scanned >= 2, "walk looks broken: only {scanned} files");
    assert!(keys >= 8, "extraction looks broken: only {keys} keys");
    assert!(
        offenders.is_empty(),
        "telemetry keys outside the engine. namespace: {offenders:?}"
    );
}

/// Blobby data so the coarse quantizer produces unevenly sized clusters.
fn clustered(dim: usize, n: usize, salt: usize) -> VectorSet {
    VectorSet::from_fn(dim, n, |r, c| {
        let blob = ((r + salt) % 9) as f32;
        blob * 25.0 + ((r * 31 + c * 7 + salt * 13) % 11) as f32 * 0.3
    })
}

fn build(
    metric: Metric,
    kstar: usize,
    salt: usize,
    num_clusters: usize,
) -> (VectorSet, IvfPqIndex) {
    let data = clustered(8, 600, salt);
    let index = IvfPqIndex::build(
        &data,
        &IvfPqConfig {
            metric,
            num_clusters,
            m: 4,
            kstar,
            coarse_iters: 3,
            pq_iters: 2,
            ..IvfPqConfig::default()
        },
    );
    (data, index)
}

/// Single-phase IVF-PQ: the trait pipeline reproduces the legacy
/// `workload → default_plan → price → run_plan` path byte for byte,
/// with results and traffic bit-identical at 1/2/4/8 threads.
#[test]
fn ivf_pq_trait_path_is_bit_identical_across_threads() {
    forall("ivf_pq trait equivalence", 4, |rng: &mut TestRng| {
        let salt = rng.usize(0..1000);
        let num_clusters = rng.usize(8..13);
        let nprobe = rng.usize(1..6).min(num_clusters);
        let k = rng.usize(5..40);
        let b = rng.usize(8..25);
        for metric in [Metric::L2, Metric::InnerProduct] {
            for kstar in [16usize, 256] {
                let (data, index) = build(metric, kstar, salt, num_clusters);
                let ids: Vec<usize> = (0..b).map(|i| (i * 37 + salt) % 600).collect();
                let queries = data.gather(&ids);
                let params = SearchParams {
                    nprobe,
                    k,
                    ..Default::default()
                };
                let scan = BatchedScan::new(&index);
                let tel = Telemetry::disabled();

                // Legacy path.
                let workload = scan.workload(&queries, &params);
                let plan = scan.default_plan(&queries, &params);
                let predicted = TrafficModel::new(PlanParams::default()).price(&workload, &plan);
                let (want, want_stats) = scan.run_plan(&queries, &params, &plan, 1, &tel);

                // Trait path, every thread count.
                let spec = QuerySpec { k, scope: nprobe };
                for threads in [1usize, 2, 4, 8] {
                    let (_, priced, run) = run_pipeline(
                        &scan,
                        &queries,
                        &spec,
                        &PlanOptions::default(),
                        threads,
                        &tel,
                    )
                    .unwrap_or_else(|e| panic!("{metric:?}/k*={kstar}/t={threads}: {e}"));
                    assert_eq!(priced, predicted, "{metric:?}/k*={kstar} price diverged");
                    assert_eq!(
                        run.results, want,
                        "{metric:?}/k*={kstar}/t={threads} results diverged"
                    );
                    assert_eq!(
                        run.measured,
                        want_stats.to_measured(),
                        "{metric:?}/k*={kstar}/t={threads} traffic diverged"
                    );
                }
            }
        }
    });
}

/// Two-phase IVF-PQ: the trait pipeline with a re-rank policy reproduces
/// `two_phase_plan → run_plan` bit for bit at every thread count.
#[test]
fn two_phase_trait_path_is_bit_identical_across_threads() {
    forall("two-phase trait equivalence", 4, |rng: &mut TestRng| {
        let salt = rng.usize(0..1000);
        let k = rng.usize(3..15);
        let policy = RerankPolicy {
            mode: *rng.pick(&[
                RerankMode::Fixed(RerankPrecision::F16),
                RerankMode::Fixed(RerankPrecision::F32),
                RerankMode::Adaptive,
            ]),
            alpha: rng.usize(1..5),
        };
        for metric in [Metric::L2, Metric::InnerProduct] {
            for kstar in [16usize, 256] {
                let (data, index) = build(metric, kstar, salt, 10);
                let queries =
                    data.gather(&(0..12).map(|i| (i * 41 + salt) % 600).collect::<Vec<_>>());
                let params = SearchParams {
                    nprobe: 4,
                    k,
                    ..Default::default()
                };
                let scan = BatchedScan::with_rerank_db(&index, &data);
                let tel = Telemetry::disabled();

                let (first, plan) = scan.two_phase_plan(&queries, &params, &policy);
                let workload = scan.workload(&queries, &first);
                let predicted = TrafficModel::new(PlanParams::default()).price(&workload, &plan);
                let (want, want_stats) = scan.run_plan(&queries, &first, &plan, 1, &tel);

                let spec = QuerySpec {
                    k,
                    scope: params.nprobe,
                };
                let options = PlanOptions {
                    rerank: Some(policy),
                };
                for threads in [1usize, 2, 4, 8] {
                    let (_, priced, run) =
                        run_pipeline(&scan, &queries, &spec, &options, threads, &tel)
                            .unwrap_or_else(|e| panic!("{metric:?}/k*={kstar}/t={threads}: {e}"));
                    assert_eq!(priced, predicted, "{metric:?}/k*={kstar} price diverged");
                    assert_eq!(
                        run.results, want,
                        "{metric:?}/k*={kstar}/t={threads} results diverged"
                    );
                    assert_eq!(
                        run.measured,
                        want_stats.to_measured(),
                        "{metric:?}/k*={kstar}/t={threads} traffic diverged"
                    );
                }
            }
        }
    });
}

/// Sharded IVF-PQ: the trait pipeline reproduces `price_batch` +
/// `search_batch` bit for bit — results, batch traffic, and the tier
/// split — at every thread count.
#[test]
fn sharded_trait_path_is_bit_identical_across_threads() {
    forall("sharded trait equivalence", 4, |rng: &mut TestRng| {
        let salt = rng.usize(0..1000);
        let shards = rng.usize(2..5);
        let nprobe = rng.usize(2..6);
        let k = rng.usize(4..20);
        for metric in [Metric::L2, Metric::InnerProduct] {
            for kstar in [16usize, 256] {
                let (data, index) = build(metric, kstar, salt, 12);
                let sharded = ShardedIndex::from_index(&index, shards);
                let queries =
                    data.gather(&(0..10).map(|i| (i * 53 + salt) % 600).collect::<Vec<_>>());
                let params = SearchParams {
                    nprobe,
                    k,
                    ..Default::default()
                };
                let tel = Telemetry::disabled();

                let prediction = sharded.price_batch(&queries, &params);
                let (want, want_stats) = sharded.search_batch(&queries, &params, 1).unwrap();

                let spec = QuerySpec { k, scope: nprobe };
                for threads in [1usize, 2, 4, 8] {
                    let (plan, priced, run) = run_pipeline(
                        &sharded,
                        &queries,
                        &spec,
                        &PlanOptions::default(),
                        threads,
                        &tel,
                    )
                    .unwrap_or_else(|e| panic!("{metric:?}/k*={kstar}/t={threads}: {e}"));
                    assert_eq!(priced, prediction.traffic, "{metric:?}/k*={kstar} price");
                    assert_eq!(
                        run.results, want,
                        "{metric:?}/k*={kstar}/t={threads} results diverged"
                    );
                    assert_eq!(
                        run.measured,
                        want_stats.to_measured(),
                        "{metric:?}/k*={kstar}/t={threads} traffic diverged"
                    );
                    // The tier split verifies against the plan's own
                    // prediction too (in-RAM shards: all zeros).
                    use anna::engine::SearchEngine;
                    let anna::plan::EnginePlan::Sharded(sp) = &plan else {
                        panic!("sharded engine planned a {} plan", plan.engine());
                    };
                    sharded
                        .verify(&priced, Some(&sp.predicted_tier), &run.measured)
                        .unwrap_or_else(|e| panic!("{metric:?}/k*={kstar} tier: {e}"));
                }
            }
        }
    });
}
