//! Cross-crate integration tests: the full pipeline from synthetic data
//! through training, indexing, software search, accelerator-functional
//! search, and timing.

use anna::core::engine::{analytic, cycle};
use anna::core::{Anna, AnnaConfig, ScmAllocation};
use anna::data::{recall, synth, Character, ClusterSizeModel, DatasetSpec, PaperDataset};
use anna::index::{BatchedScan, IvfPqConfig, IvfPqIndex, SearchParams, Trainer};
use anna::vector::Metric;

fn dataset(character: Character, n: usize) -> synth::Dataset {
    synth::generate(&DatasetSpec {
        name: "e2e".into(),
        dim: 16,
        n,
        num_queries: 32,
        character,
        num_blobs: 24,
        seed: 5,
    })
}

fn build(ds: &synth::Dataset, kstar: usize, trainer: Trainer) -> IvfPqIndex {
    IvfPqIndex::build(
        &ds.db,
        &IvfPqConfig {
            metric: ds.metric,
            num_clusters: 24,
            m: 8,
            kstar,
            trainer,
            coarse_iters: 8,
            pq_iters: 6,
            seed: 5,
        },
    )
}

#[test]
fn recall_improves_with_w_on_every_dataset_family() {
    for character in [
        Character::SiftLike,
        Character::DeepLike,
        Character::GloveLike,
        Character::TtiLike,
    ] {
        let ds = dataset(character, 8000);
        let gt = recall::ground_truth(&ds.queries, &ds.db, ds.metric, 10);
        let index = build(&ds, 16, Trainer::Faiss);
        let mut last = 0.0;
        for w in [1usize, 4, 16] {
            let params = SearchParams {
                nprobe: w,
                k: 100,
                ..Default::default()
            };
            let results = index.search_batch(&ds.queries, &params);
            let r = recall::recall_x_at_y(&gt, &results, 100);
            assert!(
                r >= last - 0.02,
                "{character:?}: recall dropped from {last} to {r} at W={w}"
            );
            last = r;
        }
        assert!(
            last > 0.35,
            "{character:?}: recall {last} too low at W=16/24"
        );
    }
}

#[test]
fn kstar256_recall_at_least_matches_kstar16() {
    // The paper: k*=256 reaches higher maximum recall than k*=16 (same
    // compression budget means more codewords per subspace but fewer
    // subspaces; at matched M here we isolate codebook resolution).
    let ds = dataset(Character::DeepLike, 8000);
    let gt = recall::ground_truth(&ds.queries, &ds.db, ds.metric, 10);
    let k16 = build(&ds, 16, Trainer::Faiss);
    let k256 = build(&ds, 256, Trainer::Faiss);
    let params = SearchParams {
        nprobe: 24,
        k: 100,
        ..Default::default()
    };
    let r16 = recall::recall_x_at_y(&gt, &k16.search_batch(&ds.queries, &params), 100);
    let r256 = recall::recall_x_at_y(&gt, &k256.search_batch(&ds.queries, &params), 100);
    assert!(
        r256 >= r16 - 0.01,
        "k*=256 ({r256}) should reach at least k*=16's recall ({r16})"
    );
}

#[test]
fn anna_functional_recall_matches_software() {
    let ds = dataset(Character::SiftLike, 6000);
    let gt = recall::ground_truth(&ds.queries, &ds.db, ds.metric, 10);
    let index = build(&ds, 16, Trainer::Faiss);
    let params = SearchParams {
        nprobe: 6,
        k: 100,
        ..Default::default()
    };
    let sw = recall::recall_x_at_y(&gt, &index.search_batch(&ds.queries, &params), 100);

    let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
    let (hw_results, _) = anna.search_batch(&ds.queries, 6, 100, ScmAllocation::Auto);
    let hw = recall::recall_x_at_y(&gt, &hw_results, 100);
    assert!(
        (sw - hw).abs() < 0.02,
        "hardware datapath recall {hw} deviates from software {sw}"
    );
}

#[test]
fn batched_scan_traffic_matches_anna_code_traffic_model() {
    // The software cluster-major scanner and the accelerator's batch
    // engine must agree on which clusters get loaded.
    let ds = dataset(Character::SiftLike, 6000);
    let index = build(&ds, 16, Trainer::Faiss);
    let params = SearchParams {
        nprobe: 5,
        k: 50,
        ..Default::default()
    };
    let (_, stats) = BatchedScan::new(&index).run(&ds.queries, &params);

    let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();
    let (_, timing) = anna.search_batch(&ds.queries, 5, 50, ScmAllocation::InterQuery);
    assert_eq!(
        stats.code_bytes, timing.traffic.code_bytes,
        "software scanner and accelerator disagree on code traffic"
    );
}

#[test]
fn engines_agree_at_paper_scale() {
    let clusters = ClusterSizeModel::skewed(1_000_000_000, 10_000, 0.35, 2);
    for dataset in [PaperDataset::Sift1B, PaperDataset::Tti1B] {
        let shape = anna::core::SearchShape {
            d: dataset.dim(),
            m: dataset.m_for(4, 256),
            kstar: 256,
            metric: dataset.metric(),
            num_clusters: 10_000,
            k: 1000,
        };
        let workload = anna::core::BatchWorkload {
            shape,
            cluster_sizes: clusters.sizes().to_vec(),
            visits: clusters.sample_query_visits(256, 32, 4),
        };
        let cfg = AnnaConfig::paper();
        let a = analytic::batch(&cfg, &workload, ScmAllocation::Auto);
        let c = cycle::batch(&cfg, &workload, ScmAllocation::Auto);
        let ratio = c.cycles / a.cycles;
        assert!(
            (0.7..1.4).contains(&ratio),
            "{dataset}: engines diverge (ratio {ratio})"
        );
        // Both engines must respect the bandwidth lower bound.
        assert!(a.cycles + 1.0 >= a.traffic.total() as f64 / cfg.bytes_per_cycle());
        assert!(c.cycles + 1.0 >= c.traffic.total() as f64 / cfg.bytes_per_cycle());
    }
}

#[test]
fn traffic_optimization_shows_figure5_effect_end_to_end() {
    let ds = dataset(Character::DeepLike, 10_000);
    let index = build(&ds, 16, Trainer::Faiss);
    let anna = Anna::new(AnnaConfig::paper(), &index).unwrap();

    let workload = anna.plan_batch(&ds.queries, 8, 100);
    let singles: Vec<anna::core::QueryWorkload> = workload
        .visits
        .iter()
        .map(|v| anna::core::QueryWorkload {
            shape: workload.shape,
            visited_cluster_sizes: v.iter().map(|&c| workload.cluster_sizes[c]).collect(),
        })
        .collect();
    let cfg = anna.config();
    let baseline = analytic::sequential_queries(cfg, &singles, cfg.n_scm);
    let optimized = analytic::batch(cfg, &workload, ScmAllocation::Auto);
    assert!(
        optimized.traffic.code_bytes < baseline.traffic.code_bytes,
        "optimization must reduce code traffic ({} vs {})",
        optimized.traffic.code_bytes,
        baseline.traffic.code_bytes
    );
}

#[test]
fn scann_trainer_improves_or_matches_mips_recall() {
    // ScaNN's anisotropic objective targets inner-product workloads.
    let ds = dataset(Character::GloveLike, 8000);
    let gt = recall::ground_truth(&ds.queries, &ds.db, ds.metric, 10);
    assert_eq!(ds.metric, Metric::InnerProduct);
    let faiss = build(&ds, 16, Trainer::Faiss);
    let scann = build(&ds, 16, Trainer::Scann);
    let params = SearchParams {
        nprobe: 12,
        k: 100,
        ..Default::default()
    };
    let rf = recall::recall_x_at_y(&gt, &faiss.search_batch(&ds.queries, &params), 100);
    let rs = recall::recall_x_at_y(&gt, &scann.search_batch(&ds.queries, &params), 100);
    // Not guaranteed to strictly win on synthetic data, but must be
    // competitive (within a few points) — and both must be usable.
    assert!(
        rs > rf - 0.08,
        "anisotropic recall {rs} collapsed vs Faiss {rf}"
    );
    assert!(rf > 0.3 && rs > 0.3);
}
