//! Offline stand-in for `criterion`.
//!
//! The bench targets in this workspace exist so every paper figure has a
//! timed entry point; statistical rigor is not the point (the real
//! numbers come from `anna-bench`'s binaries). This shim keeps the bench
//! sources unmodified against the real criterion API surface they use —
//! `benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `iter` — but runs each closure a handful of times and prints the
//! median wall time. It also exits quickly when invoked by `cargo test`,
//! so bench targets never stall the test suite.

use std::time::{Duration, Instant};

/// Opaque black box preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation (accepted and echoed, not analyzed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Mirror of `criterion::BenchmarkId` (display-only here).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Combines a function name and a parameter display.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function.into(), parameter))
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// The timing context handed to bench closures.
pub struct Bencher {
    iters: u32,
}

impl Bencher {
    /// Times `f`, running it `iters` times and recording the median.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        LAST_SAMPLE.with(|s| s.set(Some(median)));
    }
}

thread_local! {
    static LAST_SAMPLE: std::cell::Cell<Option<Duration>> =
        const { std::cell::Cell::new(None) };
}

/// Top-level driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the bench binary is invoked with `--test`:
        // run everything exactly once so the suite stays fast.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self {
            iters: if test_mode { 1 } else { 3 },
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iters: self.iters,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benches a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.iters, f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u32,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; shortens nothing here.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Records a throughput annotation (echoed in the report line).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Benches one function in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.iters, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u32, mut f: F) {
    let mut b = Bencher { iters };
    f(&mut b);
    let sample = LAST_SAMPLE.with(|s| s.take());
    match sample {
        Some(d) => eprintln!(
            "bench {label}: {:.3} ms (median of {iters})",
            d.as_secs_f64() * 1e3
        ),
        None => eprintln!("bench {label}: no iter() call"),
    }
}

/// Mirror of `criterion_group!`: defines a function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirror of `criterion_main!`: defines `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
