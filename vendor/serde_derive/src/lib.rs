//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds in an air-gapped environment, so the real serde
//! derive machinery (syn/quote/proc-macro2) is unavailable. The workspace
//! only uses `#[derive(Serialize, Deserialize)]` as a *marker* — actual
//! wire formats are hand-rolled (see `anna-bench`'s JSON emitter and
//! `anna-index::io`'s binary format) — so the derives here expand to
//! nothing and the marker traits in the sibling `serde` shim carry blanket
//! impls.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepts (and ignores) `#[serde(...)]`
/// attributes for source compatibility with the real crate.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepts (and ignores) `#[serde(...)]`
/// attributes for source compatibility with the real crate.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
