//! Offline stand-in for the subset of `rand` 0.8 the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over integer
//! and float ranges.
//!
//! The generator is a PCG-XSH-RR-style 64→32 permuted LCG extended to 64
//! output bits by drawing twice — small, fast, and statistically far
//! better than the workloads here need. Streams are **not** bit-compatible
//! with the real `StdRng` (ChaCha12); nothing in the workspace pins exact
//! stream values, only seed-determinism, which this provides.

use std::ops::{Range, RangeInclusive};

/// Mirror of `rand::SeedableRng`, reduced to the one constructor used.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values `Rng::gen` can produce (mirror of sampling from the `Standard`
/// distribution).
pub trait StandardValue {
    /// Builds a value from a uniform 64-bit draw.
    fn from_bits(bits: u64) -> Self;
}

impl StandardValue for f64 {
    fn from_bits(bits: u64) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardValue for f32 {
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardValue for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl StandardValue for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl StandardValue for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[low, high)`; `high > low` is the caller's
    /// responsibility (asserted by `gen_range`).
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128);
                debug_assert!(span > 0);
                // Multiply-shift bounded draw (Lemire); modulo bias is far
                // below anything observable at these span sizes.
                let draw = rng() as u128;
                low.wrapping_add(((draw * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
        low + f64::from_bits_uniform(rng()) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
        low + (<f32 as StandardValue>::from_bits(rng())) * (high - low)
    }
}

trait F64Uniform {
    fn from_bits_uniform(bits: u64) -> f64;
}

impl F64Uniform for f64 {
    fn from_bits_uniform(bits: u64) -> f64 {
        <f64 as StandardValue>::from_bits(bits)
    }
}

/// Range forms accepted by `gen_range` (mirror of `rand::distributions::
/// uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a value in the range.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        assert!(self.start < self.end, "gen_range on an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn FnMut() -> u64) -> $t {
                let (low, high) = self.into_inner();
                assert!(low <= high, "gen_range on an empty range");
                let span = (high as u128).wrapping_sub(low as u128) + 1;
                let draw = rng() as u128;
                low.wrapping_add(((draw * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_range_inclusive!(usize, u64, u32, u16, u8, isize, i64, i32);

/// Mirror of `rand::Rng`, reduced to `gen` and `gen_range`.
pub trait Rng {
    /// The next uniform 64-bit draw.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: StandardValue>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Seedable generator standing in for `rand::rngs::StdRng`.
    ///
    /// Internally a 64-bit LCG with an xorshift output permutation,
    /// seeded through SplitMix64 so that nearby seeds yield uncorrelated
    /// streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
        inc: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over both state words.
            let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut split = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let state = split();
            let inc = split() | 1; // stream increment must be odd
            Self { state, inc }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // PCG-style step + xorshift-multiply output.
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(self.inc);
            let mut z = self.state;
            z = (z ^ (z >> 32)).wrapping_mul(0xD6E8FEB86659FD93);
            z ^ (z >> 32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: usize = rng.gen_range(5..5);
    }
}
