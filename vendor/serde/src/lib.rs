//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, and the workspace uses
//! serde purely as a *marker* ("this type is plain data, safe to
//! persist"): every actual encoding is hand-rolled (`anna-index::io`'s
//! binary format, `anna-bench`'s JSON emitter). This shim keeps the
//! public-facing contract — `#[derive(Serialize, Deserialize)]` compiles
//! and `T: serde::Serialize` bounds hold — without the 30-crate proc-macro
//! dependency tree.
//!
//! The traits are deliberately methodless with blanket impls: swapping the
//! real serde back in (when a registry is available) requires no source
//! changes in the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented: every
/// type is "serializable" as far as trait bounds are concerned.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
/// Blanket-implemented for every sized type.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Sub-module mirror of `serde::de` for code that names the owned-marker
/// trait through its canonical path.
pub mod de {
    pub use super::DeserializeOwned;
}
